// trafficgen/workload.h — synthetic traffic for the evaluation harness. The
// paper drives its targets with TRex/trafgen at line rate using 512-byte
// packets (§5.1); what the experiments actually depend on is control over
// (a) the number of distinct flows, (b) flow locality (long-lived/skewed vs
// uniform), and (c) which table entries the flows hit — e.g. ACL deny rules
// covering a chosen fraction of traffic. Workload provides exactly those
// knobs, deterministically seeded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/entry.h"
#include "sim/batch.h"
#include "sim/packet.h"
#include "sim/rss.h"
#include "sim/tenant.h"
#include "util/rng.h"

namespace pipeleon::trafficgen {

/// Declares one header field of the flow tuple and its value range.
struct FieldRange {
    std::string field;
    std::uint64_t min = 0;
    std::uint64_t max = 0xFFFFFFFF;
};

/// A fixed population of flows: each flow is one value per declared field.
class FlowSet {
public:
    /// Draws `n_flows` distinct-ish flows uniformly from the field ranges.
    static FlowSet generate(const std::vector<FieldRange>& fields,
                            std::size_t n_flows, util::Rng& rng);

    std::size_t size() const { return values_.size(); }
    const std::vector<FieldRange>& fields() const { return fields_; }

    /// The value of `field` in flow `flow`; 0 if the field is not part of
    /// the tuple.
    std::uint64_t value(std::size_t flow, const std::string& field) const;

    /// The value of the tuple's `field_index`-th field (no name lookup).
    std::uint64_t value_at(std::size_t flow, std::size_t field_index) const {
        if (flow >= values_.size() || field_index >= values_[flow].size()) return 0;
        return values_[flow][field_index];
    }

    /// Materializes a packet for the flow (all tuple fields set).
    sim::Packet make_packet(std::size_t flow, sim::FieldTable& fields,
                            std::size_t wire_bytes = 512) const;

    /// Builds an exact-match TableEntry keyed on `key_fields` that matches
    /// this flow, executing `action_index` with `action_data`.
    ir::TableEntry exact_entry(std::size_t flow,
                               const std::vector<std::string>& key_fields,
                               int action_index,
                               std::vector<std::uint64_t> action_data = {},
                               int priority = 0) const;

private:
    std::vector<FieldRange> fields_;
    std::vector<std::vector<std::uint64_t>> values_;  // [flow][field]
};

/// Flow-sampling policy.
enum class Locality {
    Uniform,  ///< every flow equally likely
    Zipf      ///< skewed: a few flows carry most packets ("traffic locality")
};

/// A packet source over a FlowSet.
class Workload {
public:
    Workload(FlowSet flows, Locality locality, double zipf_s, std::uint64_t seed);

    const FlowSet& flows() const { return flows_; }

    /// Samples a flow index according to the locality model.
    std::size_t next_flow();

    /// Samples a flow and materializes its packet.
    sim::Packet next_packet(sim::FieldTable& fields, std::size_t wire_bytes = 512);

    /// Samples `n` flows and materializes a batch. Equivalent to calling
    /// next_packet() n times (same flow sequence for a given rng state), but
    /// the tuple's field names are interned once per call instead of once
    /// per packet, so generation amortizes with the batched data plane.
    sim::PacketBatch next_batch(sim::FieldTable& fields, std::size_t n,
                                std::size_t wire_bytes = 512);

    /// Picks ceil(fraction * size) distinct flows (for ACL targeting etc.).
    std::vector<std::size_t> pick_flows(double fraction);

    /// Re-shuffles which flows are hot (Zipf rank assignment) — used to
    /// emulate traffic-pattern changes mid-experiment.
    void reshuffle_ranks();

private:
    FlowSet flows_;
    Locality locality_;
    util::Rng rng_;
    util::ZipfSampler zipf_;
    std::vector<std::size_t> rank_to_flow_;
};

/// An offered-load source (ISSUE 6): paces the Workload at a configured
/// packets/sec rate against the emulator's virtual clock and enqueues
/// through the RSS dispatcher into the descriptor rings — the open-loop
/// front end the overload benches drive. Unlike next_batch(), the source
/// never slows down when the data plane falls behind: excess packets
/// overflow their RX ring and are dropped there (goodput < offered load is
/// the measurement, not an error).
///
/// The field ids of the flow tuple are interned on the first offer() call
/// and cached, so a source is bound to one emulator's FieldTable; packet
/// materialization reuses one scratch packet (steady-state offer() makes no
/// heap allocations).
class OfferedLoad {
public:
    OfferedLoad(Workload& workload, double packets_per_second)
        : workload_(workload), pps_(packets_per_second) {}

    double rate_pps() const { return pps_; }
    void set_rate(double packets_per_second) { pps_ = packets_per_second; }

    /// Credits `dt` virtual seconds and returns the number of whole packets
    /// now due; the fractional remainder carries to the next call, so the
    /// long-run rate converges to rate_pps() regardless of tick size.
    std::size_t accrue(double dt);

    /// Generates `n` packets from the workload and dispatches them at
    /// virtual time `now`. Returns how many the rings accepted (the rest
    /// were overflow-dropped by the dispatcher).
    std::size_t offer(sim::RssDispatcher& io, sim::FieldTable& fields,
                      std::size_t n, double now = -1.0,
                      std::size_t wire_bytes = 512);

    /// Tenant-aware variant (ISSUE 8): offers through the registry's
    /// admission path (token bucket, then that tenant's rings) at the
    /// registry's virtual clock. Returns how many packets were enqueued;
    /// the rest were rate-limited or overflow-dropped, attributed in the
    /// tenant's TenantStats. A source is bound to one tenant's FieldTable
    /// by its first offer — use one OfferedLoad per tenant.
    std::size_t offer(sim::TenantRegistry& registry, sim::TenantId tenant,
                      std::size_t n, std::size_t wire_bytes = 512);

    std::uint64_t offered() const { return offered_; }
    std::uint64_t accepted() const { return accepted_; }

private:
    Workload& workload_;
    double pps_;
    double credit_ = 0.0;
    std::vector<sim::FieldId> tuple_ids_;  ///< interned on first offer()
    sim::Packet scratch_;                  ///< reused; copied into ring slots
    std::uint64_t offered_ = 0;
    std::uint64_t accepted_ = 0;
};

}  // namespace pipeleon::trafficgen
