#include "sim/counter_shard.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace pipeleon::sim {

namespace {

/// SplitMix64 finalizer: avalanches the packed key so linear probing spreads
/// even though cache/origin ids are tiny sequential integers.
inline std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

}  // namespace

std::uint64_t& ReplayCounterTable::slot_for(std::uint64_t key) {
    const std::uint64_t stored = key + 1;
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (true) {
        Slot& s = slots_[i];
        if (s.key_plus_one == stored) return s.count;
        if (s.key_plus_one == 0) {
            s.key_plus_one = stored;
            ++size_;
            return s.count;
        }
        i = (i + 1) & mask;
    }
}

void ReplayCounterTable::add(std::uint64_t key, std::uint64_t delta) {
    if (slots_.empty() || size_ * 10 >= slots_.size() * 7) grow();
    slot_for(key) += delta;
}

void ReplayCounterTable::prefetch(std::uint64_t key) const {
    if (!slots_.empty()) {
        __builtin_prefetch(
            &slots_[static_cast<std::size_t>(mix(key)) & (slots_.size() - 1)]);
    }
}

void ReplayCounterTable::grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& s : old) {
        if (s.key_plus_one != 0) slot_for(s.key_plus_one - 1) = s.count;
    }
}

void ReplayCounterTable::clear() {
    // Zero in place: shards call clear() once per batch, and dropping the
    // slot array here would put a reallocation on every batch's first
    // replayed cache hit.
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
}

void CounterShard::reset_for(const ir::Program& program) {
    const std::size_t n = program.node_count();
    // Zero in place when the shape already matches — worker shards are reset
    // once per batch, and reallocating every per-node vector each time would
    // put an allocator call on the batch path.
    if (action_hits.size() == n && misses.size() == n) {
        bool shape_ok = true;
        for (const ir::Node& node : program.nodes()) {
            auto i = static_cast<std::size_t>(node.id);
            std::size_t want = node.is_table() ? node.table.actions.size() : 0;
            if (action_hits[i].size() != want) {
                shape_ok = false;
                break;
            }
        }
        if (shape_ok) {
            for (auto& v : action_hits) std::fill(v.begin(), v.end(), 0);
            std::fill(misses.begin(), misses.end(), 0);
            std::fill(branch_true.begin(), branch_true.end(), 0);
            std::fill(branch_false.begin(), branch_false.end(), 0);
            std::fill(cache_hits.begin(), cache_hits.end(), 0);
            std::fill(cache_misses.begin(), cache_misses.end(), 0);
            replays.clear();
            latency = util::RunningStats{};
            if constexpr (telemetry::kEnabled) latency_hist.reset();
            packets_total = 0;
            packets_dropped = 0;
            return;
        }
    }
    action_hits.assign(n, {});
    for (const ir::Node& node : program.nodes()) {
        if (node.is_table()) {
            action_hits[static_cast<std::size_t>(node.id)].assign(
                node.table.actions.size(), 0);
        }
    }
    misses.assign(n, 0);
    branch_true.assign(n, 0);
    branch_false.assign(n, 0);
    cache_hits.assign(n, 0);
    cache_misses.assign(n, 0);
    replays.clear();
    latency = util::RunningStats{};
    if constexpr (telemetry::kEnabled) latency_hist.reset();
    packets_total = 0;
    packets_dropped = 0;
}

void CounterShard::absorb(const CounterShard& other) {
    for (std::size_t i = 0; i < action_hits.size() && i < other.action_hits.size();
         ++i) {
        for (std::size_t a = 0;
             a < action_hits[i].size() && a < other.action_hits[i].size(); ++a) {
            action_hits[i][a] += other.action_hits[i][a];
        }
    }
    auto add_vec = [](std::vector<std::uint64_t>& dst,
                      const std::vector<std::uint64_t>& src) {
        for (std::size_t i = 0; i < dst.size() && i < src.size(); ++i) {
            dst[i] += src[i];
        }
    };
    add_vec(misses, other.misses);
    add_vec(branch_true, other.branch_true);
    add_vec(branch_false, other.branch_false);
    add_vec(cache_hits, other.cache_hits);
    add_vec(cache_misses, other.cache_misses);
    other.replays.for_each(
        [this](std::uint64_t key, std::uint64_t count) { replays.add(key, count); });
    latency.merge(other.latency);
    if constexpr (telemetry::kEnabled) latency_hist.merge(other.latency_hist);
    packets_total += other.packets_total;
    packets_dropped += other.packets_dropped;
}

}  // namespace pipeleon::sim
