// sim/match_batch.h — batched match-path hashing (DESIGN.md §15). The hot
// match path processes keys in groups of kHashGroup (8): gather the key
// fields field-major, hash all eight keys at once with a SIMD kernel, issue
// prefetches for all eight target slots, then resolve the probes with the
// loads already in flight. Two kernels exist because the data plane uses two
// different hash functions:
//
//   rss_hash8 — word-wise FNV-1a + SplitMix64 finisher, bit-identical to
//               rss_hash() (sim/rss.h): the steering hash;
//   key_hash8 — byte-wise FNV-1a, no finisher, bit-identical to KeyVecHash
//               (sim/engine.h): the cache/table index hash.
//
// Kernels dispatch at runtime over SimdTier (AVX2 > SSE2 > scalar). Every
// tier is bit-identical to the scalar reference — SIMD only changes how many
// lanes a multiply covers, never the arithmetic (64-bit multiplies are
// synthesized from 32x32 partial products mod 2^64) — pinned by randomized
// equivalence tests. The PIPELEON_SIMD environment variable caps the tier
// ("0"/"scalar", "1"/"sse2", "2"/"avx2"; unset = no cap), so sanitizer CI
// runs both the vector and scalar code paths.
//
// Intrinsics live in match_batch.cpp; this header is self-contained (CI
// lints that) and safe to include from benches and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/packet.h"

namespace pipeleon::sim {

/// Hash-kernel dispatch tiers, widest last. Sse2 is the x86-64 baseline;
/// non-x86 builds only ever resolve to Scalar.
enum class SimdTier : int { Scalar = 0, Sse2 = 1, Avx2 = 2 };

/// "scalar" / "sse2" / "avx2".
const char* simd_tier_name(SimdTier tier);

/// The widest tier this CPU supports (cached after the first call).
SimdTier cpu_simd_tier();

/// Parses a PIPELEON_SIMD-style cap: "0"/"scalar" -> Scalar, "1"/"sse2" ->
/// Sse2, anything else (including null/empty/"2"/"avx2") -> Avx2 (no cap).
SimdTier simd_tier_cap(const char* value);

/// The process-wide resolved tier: min(cpu_simd_tier(), PIPELEON_SIMD cap),
/// resolved once and cached — unless a test override is active.
SimdTier simd_tier();

/// Test hooks: force simd_tier() to `tier` (clamped to what the CPU
/// supports), and clear the override. Not for hot-path use.
void set_simd_tier_for_test(SimdTier tier);
void clear_simd_tier_for_test();

/// Keys per hash group: one AVX2 pass (2x4 lanes) or SSE2 pass (4x2 lanes),
/// and the number of probe prefetches kept in flight per lane.
inline constexpr std::size_t kHashGroup = 8;

/// Scalar single-key references over pre-gathered key words. Bit-identical
/// to rss_hash() / KeyVecHash{} by construction — the SIMD kernels and the
/// equivalence tests both anchor on these.
std::uint64_t rss_hash_words(const std::uint64_t* vals, std::size_t n);
std::uint64_t key_hash_words(const std::uint64_t* vals, std::size_t n);

/// Hashes kHashGroup keys gathered field-major — words[f * kHashGroup +
/// lane] is field f of lane's key — writing all kHashGroup lane hashes to
/// `out`. `tier` above what the CPU supports is clamped, so a stale cached
/// tier can never fault.
void rss_hash8(const std::uint64_t* words, std::size_t n_fields,
               std::uint64_t out[kHashGroup], SimdTier tier);
void key_hash8(const std::uint64_t* words, std::size_t n_fields,
               std::uint64_t out[kHashGroup], SimdTier tier);

/// Reusable gather+hash scratch for one consumer (a steering lane, the RSS
/// dispatcher, a bench loop). The field-major gather buffer grows amortized
/// — reserve() it during setup and the steady-state group hash performs no
/// heap allocation.
class MatchBatcher {
public:
    MatchBatcher() : tier_(simd_tier()) {}
    explicit MatchBatcher(SimdTier tier) : tier_(tier) {}

    SimdTier tier() const { return tier_; }
    void set_tier(SimdTier tier) { tier_ = tier; }

    /// Pre-sizes the gather buffer for keys of up to `n_fields` fields.
    void reserve(std::size_t n_fields) {
        if (words_.size() < n_fields * kHashGroup) {
            words_.resize(n_fields * kHashGroup, 0);
        }
    }

    /// Gathers the steering tuple of `n` (<= kHashGroup) packets and writes
    /// their RSS hashes to out[0..n). `packet_at(lane)` returns the lane's
    /// packet; lanes beyond `n` hash stale scratch and are not written out.
    template <typename PacketAt>
    void rss_group(PacketAt&& packet_at, std::size_t n, const FieldId* fields,
                   std::size_t n_fields, std::uint64_t* out) {
        gather(packet_at, n, fields, n_fields);
        std::uint64_t h[kHashGroup];
        rss_hash8(words_.data(), n_fields, h, tier_);
        for (std::size_t lane = 0; lane < n; ++lane) out[lane] = h[lane];
    }

    /// Same gather, hashed with the cache-index kernel (KeyVecHash
    /// semantics): the hashes feed CacheStore/TieredStore prefetch +
    /// lookup_hashed.
    template <typename PacketAt>
    void key_group(PacketAt&& packet_at, std::size_t n, const FieldId* fields,
                   std::size_t n_fields, std::uint64_t* out) {
        gather(packet_at, n, fields, n_fields);
        std::uint64_t h[kHashGroup];
        key_hash8(words_.data(), n_fields, h, tier_);
        for (std::size_t lane = 0; lane < n; ++lane) out[lane] = h[lane];
    }

private:
    template <typename PacketAt>
    void gather(PacketAt&& packet_at, std::size_t n, const FieldId* fields,
                std::size_t n_fields) {
        reserve(n_fields);
        for (std::size_t f = 0; f < n_fields; ++f) {
            std::uint64_t* w = words_.data() + f * kHashGroup;
            for (std::size_t lane = 0; lane < n; ++lane) {
                w[lane] = packet_at(lane).get(fields[f]);
            }
        }
    }

    SimdTier tier_;
    std::vector<std::uint64_t> words_;  ///< field-major, n_fields * kHashGroup
};

}  // namespace pipeleon::sim
