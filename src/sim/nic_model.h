// sim/nic_model.h — emulated SmartNIC targets. A NicModel couples the cost
// parameters of §3.1 with device-level characteristics: line rate, the clock
// the abstract "cycles" are measured against, whether live runtime
// reconfiguration is available (BlueField2's enhanced-dRMT ASIC supports it;
// Netronome requires a micro-engine reflash with downtime, §5.1), and
// whether a vendor flow cache fronts the whole program (Netronome's built-in
// cache, §5.2.1).
#pragma once

#include <string>

#include "cost/params.h"

namespace pipeleon::sim {

struct NicModel {
    std::string name = "generic";
    cost::CostParams costs;

    /// Port capacity reported by the throughput conversion.
    double line_rate_gbps = 100.0;
    /// Cycles per wall-clock second: converts emulated latency to rates.
    double cycles_per_second = 2.0e9;

    /// Live reconfiguration support. When false, `reload_downtime_s` of
    /// traffic is lost on every program deployment.
    bool live_reconfig = true;
    double reload_downtime_s = 0.0;

    /// Vendor-native whole-program flow cache (Netronome): modeled by the
    /// harness as a front cache the emulator accounts like any other cache.
    bool vendor_flow_cache = false;

    /// Number of run-to-completion cores (for aggregate-throughput scaling).
    int cores = 8;
};

/// Nvidia BlueField2: 100G ports, live reconfig, fast counters.
NicModel bluefield2_model();

/// Netronome Agilio CX: 40G port, reflash-based reconfiguration with
/// service interruption, expensive counters, vendor flow cache available.
NicModel agilio_cx_model();

/// The §5.3.3 BMv2-based emulated NIC: LPM/ternary 3x exact, branches 1/10
/// of an exact table.
NicModel emulated_nic_model();

}  // namespace pipeleon::sim
