// sim/control_queue.h — the typed MPSC control-plane op queue (ISSUE 3).
// Real SmartNIC control paths never mutate match engines mid-burst: driver
// update rings buffer entry ops and the datapath picks them up at safe
// points. This queue is the emulator's update ring. Any thread may push a
// ControlOp at any time, and the data-plane coordinator drains the pending
// ops — in enqueue order — at batch boundaries, before a batch's packets
// run. A program swap travels the same path as an entry insert: it is just
// the heaviest op kind, carrying the new program plus the full remapped
// entry set so the swap is observed atomically by the data plane (one epoch
// ends, the next begins between two batches).
//
// The push side is an intrusive lock-free MPSC linked list (Vyukov's
// algorithm, ISSUE 4): a producer allocates its node, swings the shared
// tail with one exchange, and links its predecessor — two wait-free atomic
// ops, no mutex, so a control caller can never be descheduled while holding
// a lock the data plane's drain would then spin on. The (single) consumer
// walks the chain from the stub; a node whose `next` is still null while
// the tail says more exist marks a producer between its exchange and its
// link store — the consumer yields until the link lands (the classic
// momentary gap of this algorithm; bounded by two instructions on the
// producer side).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/entry.h"
#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::sim {

/// A queued program swap: the new program and the remapped (deployed-space)
/// entry sets to install in the same epoch transition. `incremental` selects
/// reconfigure_incremental semantics (warm caches, partial downtime).
struct EpochSwap {
    ir::Program program;
    std::vector<ir::EntryLoad> entries;
    bool incremental = false;
};

/// One queued control-plane operation. A tagged union kept as plain fields:
/// ops are rare relative to packets, so clarity beats compactness here.
struct ControlOp {
    enum class Kind : std::uint8_t {
        InsertEntry,
        DeleteEntry,
        ModifyEntry,
        SetEntries,
        InvalidateCaches,
        BeginWindow,
        SetInstrumentation,
        SetWorkerCount,
        Swap,
    };

    Kind kind = Kind::BeginWindow;
    std::string table;                    ///< entry ops, cache invalidation
    ir::TableEntry entry;                 ///< InsertEntry / ModifyEntry
    std::vector<ir::FieldMatch> key;      ///< DeleteEntry
    std::vector<ir::TableEntry> entries;  ///< SetEntries
    profile::InstrumentationConfig instrumentation;  ///< SetInstrumentation
    int workers = 1;                      ///< SetWorkerCount
    /// Swap payload, boxed: programs are heavy and ops move through vectors.
    std::shared_ptr<EpochSwap> swap;

    /// Sequence number assigned by ControlQueue::push — lets a caller that
    /// drains synchronously find its own op's result in the drained run.
    std::uint64_t seq = 0;
};

/// Multi-producer, single-consumer queue of pending control ops. Producers
/// push lock-free (two atomic ops); the single drain side — serialized by
/// the emulator's control lock — takes the whole backlog in enqueue order.
/// Nothing here ever waits on the data plane — that is the point.
class ControlQueue {
public:
    ControlQueue();
    ~ControlQueue();
    ControlQueue(const ControlQueue&) = delete;
    ControlQueue& operator=(const ControlQueue&) = delete;

    /// Lock-free append from any thread. Returns the op's sequence number
    /// (assigned at push; monotonic per queue).
    std::uint64_t push(ControlOp op);

    /// Removes and returns every pending op, in enqueue order. Single
    /// consumer only (the emulator calls this under its control lock).
    std::vector<ControlOp> drain();

    /// Pending-op count from the push/drain counters. Exact when quiescent;
    /// momentarily conservative (never negative) against racing pushes.
    std::size_t depth() const;
    bool empty() const { return depth() == 0; }

    /// Total ops ever pushed.
    std::uint64_t total_pushed() const;
    /// High-water mark of the backlog.
    std::size_t max_depth() const;

private:
    struct Node {
        std::atomic<Node*> next{nullptr};
        ControlOp op;
    };

    /// Producers swing tail_; the consumer owns head_ (the stub / last
    /// consumed node, kept allocated until the next drain passes it).
    std::atomic<Node*> tail_;
    Node* head_;

    std::atomic<std::uint64_t> pushed_{0};
    std::atomic<std::uint64_t> drained_{0};
    std::atomic<std::size_t> max_depth_{0};
};

}  // namespace pipeleon::sim
