// sim/control_queue.h — the typed MPSC control-plane op queue (ISSUE 3).
// Real SmartNIC control paths never mutate match engines mid-burst: driver
// update rings buffer entry ops and the datapath picks them up at safe
// points. This queue is the emulator's update ring. Any thread may push a
// ControlOp at any time (the push mutex is held for an append only, never
// across packet processing), and the data-plane coordinator drains the
// pending ops — in enqueue order — at batch boundaries, before a batch's
// packets run. A program swap travels the same path as an entry insert: it
// is just the heaviest op kind, carrying the new program plus the full
// remapped entry set so the swap is observed atomically by the data plane
// (one epoch ends, the next begins between two batches).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ir/entry.h"
#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::sim {

/// A queued program swap: the new program and the remapped (deployed-space)
/// entry sets to install in the same epoch transition. `incremental` selects
/// reconfigure_incremental semantics (warm caches, partial downtime).
struct EpochSwap {
    ir::Program program;
    std::vector<ir::EntryLoad> entries;
    bool incremental = false;
};

/// One queued control-plane operation. A tagged union kept as plain fields:
/// ops are rare relative to packets, so clarity beats compactness here.
struct ControlOp {
    enum class Kind : std::uint8_t {
        InsertEntry,
        DeleteEntry,
        ModifyEntry,
        SetEntries,
        InvalidateCaches,
        BeginWindow,
        SetInstrumentation,
        SetWorkerCount,
        Swap,
    };

    Kind kind = Kind::BeginWindow;
    std::string table;                    ///< entry ops, cache invalidation
    ir::TableEntry entry;                 ///< InsertEntry / ModifyEntry
    std::vector<ir::FieldMatch> key;      ///< DeleteEntry
    std::vector<ir::TableEntry> entries;  ///< SetEntries
    profile::InstrumentationConfig instrumentation;  ///< SetInstrumentation
    int workers = 1;                      ///< SetWorkerCount
    /// Swap payload, boxed: programs are heavy and ops move through vectors.
    std::shared_ptr<EpochSwap> swap;

    /// Sequence number assigned by ControlQueue::push — lets a caller that
    /// drains synchronously find its own op's result in the drained run.
    std::uint64_t seq = 0;
};

/// Multi-producer queue of pending control ops. Producers append under a
/// dedicated mutex; the (single) drain side swaps the whole backlog out in
/// one critical section. Nothing here ever waits on the data plane — that
/// is the point.
class ControlQueue {
public:
    /// Appends an op; never blocks on a drain in progress longer than the
    /// swap-out itself. Returns the op's sequence number (monotonic).
    std::uint64_t push(ControlOp op);

    /// Removes and returns every pending op, in enqueue order.
    std::vector<ControlOp> drain();

    std::size_t depth() const;
    bool empty() const { return depth() == 0; }

    /// Total ops ever pushed.
    std::uint64_t total_pushed() const;
    /// High-water mark of the backlog.
    std::size_t max_depth() const;

private:
    mutable std::mutex mu_;
    std::vector<ControlOp> ops_;
    std::uint64_t pushed_ = 0;
    std::size_t max_depth_ = 0;
};

}  // namespace pipeleon::sim
