#include "sim/nic_model.h"

namespace pipeleon::sim {

NicModel bluefield2_model() {
    NicModel m;
    m.name = "BlueField2";
    m.costs = cost::bluefield2_params();
    m.line_rate_gbps = 100.0;
    // Tuned so that a ~12-exact-table program saturates the 100G port with
    // 512 B packets across the ASIC cores, matching the shape of Fig 9a.
    m.cycles_per_second = 0.5e9;
    m.live_reconfig = true;
    m.reload_downtime_s = 0.0;
    m.vendor_flow_cache = false;
    m.cores = 8;
    return m;
}

NicModel agilio_cx_model() {
    NicModel m;
    m.name = "AgilioCX";
    m.costs = cost::agilio_cx_params();
    m.line_rate_gbps = 40.0;
    // 54 micro-engines, each far slower than a dRMT packet engine; the
    // aggregate budget makes a ~20-table exact pipeline run at ~15 Gbps,
    // matching the Fig 9b operating range.
    m.cycles_per_second = 45.0e6;
    m.live_reconfig = false;
    m.reload_downtime_s = 12.0;  // micro-engine reflash interrupts service
    m.vendor_flow_cache = true;
    m.cores = 54;  // micro-engines
    return m;
}

NicModel emulated_nic_model() {
    NicModel m;
    m.name = "EmulatedNIC";
    m.costs = cost::emulated_nic_params();
    m.line_rate_gbps = 100.0;
    m.cycles_per_second = 0.5e9;
    m.live_reconfig = true;
    m.reload_downtime_s = 0.0;
    m.vendor_flow_cache = false;
    m.cores = 4;
    return m;
}

}  // namespace pipeleon::sim
