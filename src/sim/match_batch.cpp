#include "sim/match_batch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define PIPELEON_X86_64 1
#include <immintrin.h>
#endif

namespace pipeleon::sim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kMix2 = 0x94d049bb133111ebULL;

inline std::uint64_t splitmix(std::uint64_t h) {
    h ^= h >> 30;
    h *= kMix1;
    h ^= h >> 27;
    h *= kMix2;
    h ^= h >> 31;
    return h;
}

}  // namespace

const char* simd_tier_name(SimdTier tier) {
    switch (tier) {
        case SimdTier::Scalar: return "scalar";
        case SimdTier::Sse2: return "sse2";
        case SimdTier::Avx2: return "avx2";
    }
    return "scalar";
}

SimdTier cpu_simd_tier() {
#if PIPELEON_X86_64
    static const SimdTier tier =
        __builtin_cpu_supports("avx2") ? SimdTier::Avx2 : SimdTier::Sse2;
    return tier;
#else
    return SimdTier::Scalar;
#endif
}

SimdTier simd_tier_cap(const char* value) {
    if (value == nullptr || *value == '\0') return SimdTier::Avx2;
    if (std::strcmp(value, "0") == 0 || std::strcmp(value, "scalar") == 0) {
        return SimdTier::Scalar;
    }
    if (std::strcmp(value, "1") == 0 || std::strcmp(value, "sse2") == 0) {
        return SimdTier::Sse2;
    }
    return SimdTier::Avx2;
}

namespace {

std::atomic<int> g_tier_override{-1};

SimdTier resolved_tier() {
    const SimdTier cpu = cpu_simd_tier();
    const SimdTier cap = simd_tier_cap(std::getenv("PIPELEON_SIMD"));
    return static_cast<int>(cap) < static_cast<int>(cpu) ? cap : cpu;
}

}  // namespace

SimdTier simd_tier() {
    const int o = g_tier_override.load(std::memory_order_relaxed);
    if (o >= 0) return static_cast<SimdTier>(o);
    static const SimdTier tier = resolved_tier();
    return tier;
}

void set_simd_tier_for_test(SimdTier tier) {
    if (static_cast<int>(tier) > static_cast<int>(cpu_simd_tier())) {
        tier = cpu_simd_tier();
    }
    g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void clear_simd_tier_for_test() {
    g_tier_override.store(-1, std::memory_order_relaxed);
}

std::uint64_t rss_hash_words(const std::uint64_t* vals, std::size_t n) {
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= vals[i];
        h *= kFnvPrime;
    }
    return splitmix(h);
}

std::uint64_t key_hash_words(const std::uint64_t* vals, std::size_t n) {
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = vals[i];
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= kFnvPrime;
        }
    }
    return h;
}

namespace {

// ------------------------------------------------------------ scalar tier

void rss_hash8_scalar(const std::uint64_t* words, std::size_t n_fields,
                      std::uint64_t out[kHashGroup]) {
    for (std::size_t lane = 0; lane < kHashGroup; ++lane) {
        std::uint64_t h = kFnvOffset;
        for (std::size_t f = 0; f < n_fields; ++f) {
            h ^= words[f * kHashGroup + lane];
            h *= kFnvPrime;
        }
        out[lane] = splitmix(h);
    }
}

void key_hash8_scalar(const std::uint64_t* words, std::size_t n_fields,
                      std::uint64_t out[kHashGroup]) {
    for (std::size_t lane = 0; lane < kHashGroup; ++lane) {
        std::uint64_t h = kFnvOffset;
        for (std::size_t f = 0; f < n_fields; ++f) {
            const std::uint64_t w = words[f * kHashGroup + lane];
            for (int b = 0; b < 8; ++b) {
                h ^= (w >> (8 * b)) & 0xFF;
                h *= kFnvPrime;
            }
        }
        out[lane] = h;
    }
}

#if PIPELEON_X86_64

// --------------------------------------------------------------- SSE2 tier
//
// x86-64 has no packed 64-bit multiply below AVX-512DQ, so the kernels
// synthesize it from 32x32->64 partial products:
//   a*b mod 2^64 = (a_lo*b_lo) + ((a_hi*b_lo + a_lo*b_hi) << 32)
// which is bit-exact mod 2^64 — the only arithmetic the hash needs.

inline __m128i mul64_sse2(__m128i a, __m128i b) {
    const __m128i lo = _mm_mul_epu32(a, b);
    const __m128i cross =
        _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
    return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i splitmix_sse2(__m128i h) {
    h = _mm_xor_si128(h, _mm_srli_epi64(h, 30));
    h = mul64_sse2(h, _mm_set1_epi64x(static_cast<long long>(kMix1)));
    h = _mm_xor_si128(h, _mm_srli_epi64(h, 27));
    h = mul64_sse2(h, _mm_set1_epi64x(static_cast<long long>(kMix2)));
    h = _mm_xor_si128(h, _mm_srli_epi64(h, 31));
    return h;
}

void rss_hash8_sse2(const std::uint64_t* words, std::size_t n_fields,
                    std::uint64_t out[kHashGroup]) {
    const __m128i prime = _mm_set1_epi64x(static_cast<long long>(kFnvPrime));
    __m128i h[4];
    for (int v = 0; v < 4; ++v) {
        h[v] = _mm_set1_epi64x(static_cast<long long>(kFnvOffset));
    }
    for (std::size_t f = 0; f < n_fields; ++f) {
        const std::uint64_t* w = words + f * kHashGroup;
        for (int v = 0; v < 4; ++v) {
            const __m128i x = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(w + 2 * v));
            h[v] = mul64_sse2(_mm_xor_si128(h[v], x), prime);
        }
    }
    for (int v = 0; v < 4; ++v) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * v),
                         splitmix_sse2(h[v]));
    }
}

void key_hash8_sse2(const std::uint64_t* words, std::size_t n_fields,
                    std::uint64_t out[kHashGroup]) {
    const __m128i prime = _mm_set1_epi64x(static_cast<long long>(kFnvPrime));
    const __m128i byte_mask = _mm_set1_epi64x(0xFF);
    __m128i h[4];
    for (int v = 0; v < 4; ++v) {
        h[v] = _mm_set1_epi64x(static_cast<long long>(kFnvOffset));
    }
    for (std::size_t f = 0; f < n_fields; ++f) {
        const std::uint64_t* w = words + f * kHashGroup;
        for (int v = 0; v < 4; ++v) {
            const __m128i x = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(w + 2 * v));
            for (int b = 0; b < 8; ++b) {
                const __m128i byte = _mm_and_si128(
                    _mm_srli_epi64(x, 8 * b), byte_mask);
                h[v] = mul64_sse2(_mm_xor_si128(h[v], byte), prime);
            }
        }
    }
    for (int v = 0; v < 4; ++v) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * v), h[v]);
    }
}

// --------------------------------------------------------------- AVX2 tier

__attribute__((target("avx2"))) inline __m256i mul64_avx2(__m256i a,
                                                          __m256i b) {
    const __m256i lo = _mm256_mul_epu32(a, b);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i splitmix_avx2(__m256i h) {
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 30));
    h = mul64_avx2(h, _mm256_set1_epi64x(static_cast<long long>(kMix1)));
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 27));
    h = mul64_avx2(h, _mm256_set1_epi64x(static_cast<long long>(kMix2)));
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 31));
    return h;
}

__attribute__((target("avx2"))) void rss_hash8_avx2(
    const std::uint64_t* words, std::size_t n_fields,
    std::uint64_t out[kHashGroup]) {
    const __m256i prime =
        _mm256_set1_epi64x(static_cast<long long>(kFnvPrime));
    __m256i h0 = _mm256_set1_epi64x(static_cast<long long>(kFnvOffset));
    __m256i h1 = h0;
    for (std::size_t f = 0; f < n_fields; ++f) {
        const std::uint64_t* w = words + f * kHashGroup;
        const __m256i x0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
        const __m256i x1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
        h0 = mul64_avx2(_mm256_xor_si256(h0, x0), prime);
        h1 = mul64_avx2(_mm256_xor_si256(h1, x1), prime);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), splitmix_avx2(h0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                        splitmix_avx2(h1));
}

__attribute__((target("avx2"))) void key_hash8_avx2(
    const std::uint64_t* words, std::size_t n_fields,
    std::uint64_t out[kHashGroup]) {
    const __m256i prime =
        _mm256_set1_epi64x(static_cast<long long>(kFnvPrime));
    const __m256i byte_mask = _mm256_set1_epi64x(0xFF);
    __m256i h0 = _mm256_set1_epi64x(static_cast<long long>(kFnvOffset));
    __m256i h1 = h0;
    for (std::size_t f = 0; f < n_fields; ++f) {
        const std::uint64_t* w = words + f * kHashGroup;
        const __m256i x0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
        const __m256i x1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
        for (int b = 0; b < 8; ++b) {
            const __m256i b0 =
                _mm256_and_si256(_mm256_srli_epi64(x0, 8 * b), byte_mask);
            const __m256i b1 =
                _mm256_and_si256(_mm256_srli_epi64(x1, 8 * b), byte_mask);
            h0 = mul64_avx2(_mm256_xor_si256(h0, b0), prime);
            h1 = mul64_avx2(_mm256_xor_si256(h1, b1), prime);
        }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), h0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), h1);
}

#endif  // PIPELEON_X86_64

inline SimdTier clamp_tier(SimdTier tier) {
    const SimdTier cpu = cpu_simd_tier();
    return static_cast<int>(tier) > static_cast<int>(cpu) ? cpu : tier;
}

}  // namespace

void rss_hash8(const std::uint64_t* words, std::size_t n_fields,
               std::uint64_t out[kHashGroup], SimdTier tier) {
    switch (clamp_tier(tier)) {
#if PIPELEON_X86_64
        case SimdTier::Avx2: rss_hash8_avx2(words, n_fields, out); return;
        case SimdTier::Sse2: rss_hash8_sse2(words, n_fields, out); return;
#else
        case SimdTier::Avx2:
        case SimdTier::Sse2:
#endif
        case SimdTier::Scalar: break;
    }
    rss_hash8_scalar(words, n_fields, out);
}

void key_hash8(const std::uint64_t* words, std::size_t n_fields,
               std::uint64_t out[kHashGroup], SimdTier tier) {
    switch (clamp_tier(tier)) {
#if PIPELEON_X86_64
        case SimdTier::Avx2: key_hash8_avx2(words, n_fields, out); return;
        case SimdTier::Sse2: key_hash8_sse2(words, n_fields, out); return;
#else
        case SimdTier::Avx2:
        case SimdTier::Sse2:
#endif
        case SimdTier::Scalar: break;
    }
    key_hash8_scalar(words, n_fields, out);
}

}  // namespace pipeleon::sim
