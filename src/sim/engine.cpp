#include "sim/engine.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace pipeleon::sim {

using ir::FieldMatch;
using ir::MatchKind;
using ir::Table;
using ir::TableEntry;

std::size_t KeyVecHash::operator()(const KeyVec& key) const {
    std::size_t h = 1469598103934665603ULL;  // FNV offset basis
    for (std::uint64_t word : key) {
        for (int b = 0; b < 8; ++b) {
            h ^= (word >> (8 * b)) & 0xFF;
            h *= 1099511628211ULL;  // FNV prime
        }
    }
    return h;
}

namespace {

std::uint64_t width_mask(int width_bits) {
    if (width_bits >= 64) return ~0ULL;
    if (width_bits <= 0) return 0;
    return (1ULL << width_bits) - 1;
}

std::uint64_t prefix_mask(int prefix_len, int width_bits) {
    if (prefix_len <= 0) return 0;
    if (prefix_len >= width_bits) return width_mask(width_bits);
    return width_mask(width_bits) & ~width_mask(width_bits - prefix_len);
}

// ------------------------------------------------------------ exact engine

class ExactEngine final : public MatchEngine {
public:
    void rebuild(const Table& /*table*/,
                 const std::vector<TableEntry>& entries) override {
        map_.clear();
        map_.reserve(entries.size());
        for (std::size_t i = 0; i < entries.size(); ++i) {
            KeyVec key;
            key.reserve(entries[i].key.size());
            for (const FieldMatch& m : entries[i].key) key.push_back(m.value);
            map_.emplace(std::move(key), i);  // first entry wins on duplicates
        }
    }

    std::optional<MatchOutcome> lookup(const KeyVec& key) const override {
        auto it = map_.find(key);
        if (it == map_.end()) return std::nullopt;
        return MatchOutcome{it->second};
    }

    int m() const override { return 1; }

private:
    std::unordered_map<KeyVec, std::size_t, KeyVecHash> map_;
};

// -------------------------------------------------------------- LPM engine

/// One hash table per distinct prefix-length tuple, probed in decreasing
/// total-prefix order so the first hit is the longest match.
class LpmEngine final : public MatchEngine {
public:
    void rebuild(const Table& table,
                 const std::vector<TableEntry>& entries) override {
        groups_.clear();
        widths_.clear();
        for (const ir::MatchKey& k : table.keys) widths_.push_back(k.width_bits);

        // Group entries by their prefix-length tuple (exact components use
        // the full width as their "prefix").
        std::map<std::vector<int>, Group, std::greater<>> by_lens;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            std::vector<int> lens;
            KeyVec masked;
            bool ok = true;
            for (std::size_t c = 0; c < entries[i].key.size(); ++c) {
                const FieldMatch& m = entries[i].key[c];
                int width = widths_[c];
                int len;
                switch (m.kind) {
                    case MatchKind::Exact: len = width; break;
                    case MatchKind::Lpm: len = m.prefix_len; break;
                    default: ok = false; len = 0; break;
                }
                if (!ok) break;
                lens.push_back(len);
                masked.push_back(m.value & prefix_mask(len, width));
            }
            if (!ok) continue;  // non-LPM entries are ignored by this engine
            Group& g = by_lens[lens];
            g.lens = lens;
            g.map.emplace(std::move(masked), i);
        }
        // Longest total prefix first.
        std::vector<std::pair<int, std::vector<int>>> order;
        for (auto& [lens, g] : by_lens) {
            int total = 0;
            for (int l : lens) total += l;
            order.emplace_back(total, lens);
        }
        std::sort(order.begin(), order.end(), std::greater<>());
        for (auto& [total, lens] : order) {
            (void)total;
            groups_.push_back(std::move(by_lens[lens]));
        }
    }

    std::optional<MatchOutcome> lookup(const KeyVec& key) const override {
        for (const Group& g : groups_) {
            KeyVec masked;
            masked.reserve(key.size());
            for (std::size_t c = 0; c < key.size(); ++c) {
                masked.push_back(key[c] & prefix_mask(g.lens[c], widths_[c]));
            }
            auto it = g.map.find(masked);
            if (it != g.map.end()) return MatchOutcome{it->second};
        }
        return std::nullopt;
    }

    int m() const override {
        return std::max(1, static_cast<int>(groups_.size()));
    }

private:
    struct Group {
        std::vector<int> lens;
        std::unordered_map<KeyVec, std::size_t, KeyVecHash> map;
    };
    std::vector<Group> groups_;
    std::vector<int> widths_;
};

// ---------------------------------------------------------- ternary engine

/// One hash table per distinct mask combination; every group is probed and
/// the highest-priority hit wins. Range components fall into a linear-scan
/// group (ranges are not mask-encodable).
class TernaryEngine final : public MatchEngine {
public:
    void rebuild(const Table& table,
                 const std::vector<TableEntry>& entries) override {
        groups_.clear();
        linear_.clear();
        widths_.clear();
        entries_ = &entries;
        for (const ir::MatchKey& k : table.keys) widths_.push_back(k.width_bits);

        std::map<std::vector<std::uint64_t>, Group> by_mask;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            std::vector<std::uint64_t> masks;
            KeyVec masked;
            bool hashable = true;
            for (std::size_t c = 0; c < entries[i].key.size(); ++c) {
                const FieldMatch& m = entries[i].key[c];
                int width = widths_[c];
                std::uint64_t mask = 0;
                switch (m.kind) {
                    case MatchKind::Exact: mask = width_mask(width); break;
                    case MatchKind::Lpm: mask = prefix_mask(m.prefix_len, width); break;
                    case MatchKind::Ternary: mask = m.mask; break;
                    case MatchKind::Range: mask = 0; hashable = false; break;
                }
                if (!hashable) break;
                masks.push_back(mask);
                masked.push_back(m.value & mask);
            }
            if (!hashable) {
                linear_.push_back(i);
                continue;
            }
            Group& g = by_mask[masks];
            g.masks = masks;
            auto [it, inserted] = g.map.emplace(masked, i);
            if (!inserted) {
                // Keep the higher-priority entry (lower index breaks ties).
                std::size_t old = it->second;
                if (entries[i].priority > entries[old].priority) it->second = i;
            }
        }
        for (auto& [masks, g] : by_mask) groups_.push_back(std::move(g));
    }

    std::optional<MatchOutcome> lookup(const KeyVec& key) const override {
        const std::vector<TableEntry>& entries = *entries_;
        std::optional<std::size_t> best;
        auto better = [&entries](std::size_t a, std::size_t b) {
            if (entries[a].priority != entries[b].priority) {
                return entries[a].priority > entries[b].priority;
            }
            return a < b;
        };
        for (const Group& g : groups_) {
            KeyVec masked;
            masked.reserve(key.size());
            for (std::size_t c = 0; c < key.size(); ++c) {
                masked.push_back(key[c] & g.masks[c]);
            }
            auto it = g.map.find(masked);
            if (it != g.map.end() &&
                (!best.has_value() || better(it->second, *best))) {
                best = it->second;
            }
        }
        for (std::size_t i : linear_) {
            const TableEntry& e = entries[i];
            bool hit = true;
            for (std::size_t c = 0; c < key.size() && hit; ++c) {
                hit = e.key[c].matches(key[c], widths_[c]);
            }
            if (hit && (!best.has_value() || better(i, *best))) best = i;
        }
        if (!best.has_value()) return std::nullopt;
        return MatchOutcome{*best};
    }

    int m() const override {
        return std::max(
            1, static_cast<int>(groups_.size() + (linear_.empty() ? 0 : 1)));
    }

private:
    struct Group {
        std::vector<std::uint64_t> masks;
        std::unordered_map<KeyVec, std::size_t, KeyVecHash> map;
    };
    std::vector<Group> groups_;
    std::vector<std::size_t> linear_;
    std::vector<int> widths_;
    const std::vector<TableEntry>* entries_ = nullptr;
};

}  // namespace

std::unique_ptr<MatchEngine> make_engine(const Table& table) {
    switch (table.effective_match_kind()) {
        case MatchKind::Exact: return std::make_unique<ExactEngine>();
        case MatchKind::Lpm: return std::make_unique<LpmEngine>();
        case MatchKind::Ternary:
        case MatchKind::Range: return std::make_unique<TernaryEngine>();
    }
    return std::make_unique<ExactEngine>();
}

}  // namespace pipeleon::sim
