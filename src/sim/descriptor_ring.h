// sim/descriptor_ring.h — fixed-capacity SPSC descriptor ring (ISSUE 6).
// This is the emulator's stand-in for a NIC hardware queue: a power-of-two
// array of descriptor slots with free-running head/tail indices, one
// producer (the RSS dispatcher) and one consumer (the owning worker). The
// design follows the ixgbe/tinynf idiom:
//
//   - indices are free-running 64-bit counters; `index & mask` addresses the
//     slot, so wraparound needs no modulo and full/empty are unambiguous
//     (full = tail - head == capacity);
//   - the producer owns `tail` (+ a cached copy of `head`), the consumer
//     owns `head` (+ a cached copy of `tail`); each side re-reads the other's
//     index only when its cache says the ring looks full/empty, so the
//     steady state touches one cache line per side;
//   - head and tail live on separate cache lines (alignas below) — the
//     classic false-sharing fix for SPSC rings;
//   - slots are assigned into, never re-constructed: a slot that has held a
//     packet keeps its field vector's capacity, so the steady-state push is
//     allocation-free exactly like re-filling a DMA buffer;
//   - overload policy is DROP, never block: when the ring is full the push
//     fails, the drop counter bumps, and the producer moves on. Predictable
//     behavior under overload (tinynf's DROP principle) — the producer's
//     cost is bounded no matter how slow the consumer is.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pipeleon::sim {

/// Rounds up to the next power of two (minimum 2).
inline std::size_t ring_pow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
}

template <typename T>
class DescriptorRing {
public:
    explicit DescriptorRing(std::size_t capacity)
        : capacity_(ring_pow2(capacity)),
          mask_(capacity_ - 1),
          slots_(capacity_) {}

    DescriptorRing(const DescriptorRing&) = delete;
    DescriptorRing& operator=(const DescriptorRing&) = delete;

    std::size_t capacity() const { return capacity_; }

    /// Producer side. Copy-assigns `v` into the slot (buffer reuse) and
    /// publishes it. Returns false — and counts a drop — when the ring is
    /// full; the producer never blocks.
    bool try_push(const T& v) {
        return try_emplace([&v](T& slot) { slot = v; });
    }
    bool try_push(T&& v) {
        return try_emplace([&v](T& slot) { slot = std::move(v); });
    }

    /// Producer side, zero-copy variant: `fill(slot)` writes the descriptor
    /// directly into the ring slot (so a dispatcher can assign fields into
    /// the slot's reused buffers instead of building a descriptor and
    /// copying it in). Returns false — and counts a drop — when full.
    template <typename Fill>
    bool try_emplace(Fill&& fill) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - prod_.head_cache >= capacity_) {
            prod_.head_cache = head_.load(std::memory_order_acquire);
            if (tail - prod_.head_cache >= capacity_) {
                prod_.drops.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
        }
        fill(slots_[static_cast<std::size_t>(tail) & mask_]);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: invokes `fn(slot)` on each pending descriptor in FIFO
    /// order, in place (the slot is the packet's home while it is
    /// processed, like a DMA buffer). `fn` returns true to keep consuming,
    /// false to stop after the current item (budget exhausted). At most
    /// `max` items are consumed. Returns the number consumed; each item's
    /// slot is released to the producer as soon as `fn` returns.
    template <typename Fn>
    std::size_t consume(Fn&& fn, std::size_t max = SIZE_MAX) {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == cons_.tail_cache) {
            cons_.tail_cache = tail_.load(std::memory_order_acquire);
            if (head == cons_.tail_cache) return 0;
        }
        std::size_t n = 0;
        while (n < max) {
            if (head == cons_.tail_cache) {
                cons_.tail_cache = tail_.load(std::memory_order_acquire);
                if (head == cons_.tail_cache) break;
            }
            const bool more = fn(slots_[static_cast<std::size_t>(head) & mask_]);
            ++head;
            ++n;
            head_.store(head, std::memory_order_release);
            if (!more) break;
        }
        return n;
    }

    /// Consumer side, two-phase variant for the batched match pipeline
    /// (DESIGN.md §15): exposes up to `max` pending slots as raw pointers
    /// WITHOUT releasing them, so the consumer can hash/prefetch a whole
    /// group before processing any packet, then advance(). The pointers stay
    /// valid until advance() — the producer only writes slots at or past the
    /// published head. Consumer-thread only, like consume().
    std::size_t peek(T** out, std::size_t max) {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::size_t n = 0;
        while (n < max) {
            if (head == cons_.tail_cache) {
                cons_.tail_cache = tail_.load(std::memory_order_acquire);
                if (head == cons_.tail_cache) break;
            }
            out[n++] = &slots_[static_cast<std::size_t>(head) & mask_];
            ++head;
        }
        return n;
    }

    /// Releases the first `n` peeked slots back to the producer. Must not
    /// exceed the count the preceding peek() returned.
    void advance(std::size_t n) {
        head_.store(head_.load(std::memory_order_relaxed) + n,
                    std::memory_order_release);
    }

    // Accounting. enqueued/dequeued are the free-running indices, so the
    // invariant `enqueued + dropped == dequeued + dropped + size` holds at
    // any quiescent point: every offered descriptor was either consumed,
    // dropped, or is still in flight.
    std::uint64_t enqueued() const {
        return tail_.load(std::memory_order_acquire);
    }
    std::uint64_t dequeued() const {
        return head_.load(std::memory_order_acquire);
    }
    std::uint64_t dropped() const {
        return prod_.drops.load(std::memory_order_relaxed);
    }
    std::size_t size() const {
        const std::uint64_t t = tail_.load(std::memory_order_acquire);
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(t - h);
    }
    bool empty() const { return size() == 0; }

private:
    const std::size_t capacity_;
    const std::size_t mask_;
    std::vector<T> slots_;

    /// Consumer's cache line: its own index plus its cache of the
    /// producer's.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    struct {
        std::uint64_t tail_cache = 0;
    } cons_;

    /// Producer's cache line: its own index, its cache of the consumer's,
    /// and the overflow-drop counter (only the producer writes it).
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    struct {
        std::uint64_t head_cache = 0;
        std::atomic<std::uint64_t> drops{0};
    } prod_;
};

}  // namespace pipeleon::sim
