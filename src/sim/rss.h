// sim/rss.h — multi-queue RSS dispatch over descriptor rings (ISSUE 6).
// The dispatcher is the emulator's front end: it hashes each packet's flow
// tuple (the same FNV-1a + SplitMix64 hash the batch path steers with, so
// same flow -> same queue -> same worker shard, always) and enqueues an RX
// descriptor into that queue's ring, dropping on overflow. The emulator
// builds one via Emulator::make_rings() and services it via
// Emulator::poll(); a single-queue dispatcher is the in-order configuration
// deterministic mode requires.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/batch.h"
#include "sim/match_batch.h"
#include "sim/packet.h"
#include "sim/queue_pair.h"

namespace pipeleon::sim {

/// The RSS flow hash: FNV-1a over the steering tuple's 64-bit values,
/// finished with a SplitMix64 avalanche so the low bits a modulo consumes
/// are well mixed. Shared by Emulator::steer_worker and RssDispatcher so
/// ring dispatch and batch steering agree packet-for-packet.
std::uint64_t rss_hash(const Packet& packet, const FieldId* fields,
                       std::size_t n_fields);

/// Owns the per-worker queue pairs plus the steering-tuple snapshot used to
/// hash packets onto them. Single-producer: one thread dispatches (the
/// driver/trafficgen side); the emulator's workers are the per-queue
/// consumers.
class RssDispatcher {
public:
    RssDispatcher(std::size_t queues, std::vector<FieldId> steer_fields,
                  const RingConfig& cfg = {});

    RssDispatcher(RssDispatcher&&) = default;
    RssDispatcher& operator=(RssDispatcher&&) = default;
    RssDispatcher(const RssDispatcher&) = delete;
    RssDispatcher& operator=(const RssDispatcher&) = delete;

    std::size_t queue_count() const { return queues_.size(); }
    QueuePair& queue(std::size_t i) { return *queues_[i]; }
    const QueuePair& queue(std::size_t i) const { return *queues_[i]; }

    /// Replaces the steering tuple (Emulator::poll refreshes it after an
    /// epoch swap recompiles the program, so steering follows the deployed
    /// key set).
    void set_steer_fields(std::vector<FieldId> fields, std::uint64_t epoch);
    std::uint64_t steer_epoch() const { return steer_epoch_; }

    /// Installs a NUMA-aware indirection table (RETA): queue =
    /// reta[hash & (reta.size()-1)]. Size must be a power of two; an empty
    /// table restores plain `hash % queues`. The emulator shares its own
    /// RETA here (make_rings) so ring dispatch and batch steering agree
    /// packet-for-packet even when steering is node-aware (DESIGN.md §15).
    void set_steer_map(std::vector<std::uint32_t> reta);
    const std::vector<std::uint32_t>& steer_map() const { return reta_; }

    /// Hashes the packet onto a queue and enqueues a copy of it as an RX
    /// descriptor stamped with the next arrival seq and `now` (virtual
    /// seconds; pass < 0 to skip queueing-delay accounting). Returns the
    /// queue index, or -1 when that queue's ring was full and the packet
    /// was dropped (the producer never blocks).
    int dispatch(const Packet& packet, double now = -1.0);

    /// dispatch() with the steering hash already computed (must equal
    /// rss_hash over the current steer fields). The batched front end hashes
    /// groups of kHashGroup packets with the SIMD kernel, then funnels each
    /// through here — one hash per packet per boundary, stamped into
    /// RxDesc::flow_hash for downstream reuse.
    int dispatch_hashed(const Packet& packet, std::uint64_t h,
                        double now = -1.0);

    /// Dispatches every packet of the batch; returns how many were
    /// accepted (the rest overflowed their ring and were dropped).
    std::size_t dispatch_batch(const PacketBatch& batch, double now = -1.0);

    /// Arrival sequence numbers handed out so far (== packets offered).
    std::uint64_t next_seq() const { return seq_; }

    /// Aggregate RX accounting summed over all queues (absolute values).
    RingStats stats() const;

    /// Accounting delta since the previous take_delta() call — the per-poll
    /// increments Emulator::poll feeds into the ring.* telemetry. `depth`
    /// in the returned struct is the current absolute backlog.
    RingStats take_delta();

private:
    // unique_ptr slots keep QueuePair (whose rings are non-movable because
    // of the alignas'd atomics) stable while the dispatcher itself stays
    // movable.
    std::vector<std::unique_ptr<QueuePair>> queues_;
    std::vector<FieldId> steer_;
    std::vector<std::uint32_t> reta_;  ///< empty = hash % queues
    MatchBatcher hasher_;              ///< SIMD group hashing scratch
    std::uint64_t steer_epoch_ = 0;
    std::uint64_t seq_ = 0;
    RingStats accounted_;  ///< totals already reported via take_delta()
};

}  // namespace pipeleon::sim
