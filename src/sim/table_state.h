// sim/table_state.h — runtime state of deployed tables: the entry list plus
// its match engine for regular tables, and the flow-cache store (LRU with an
// insertion rate limiter, §3.2.2) for cache tables. Cache entries hold
// replay lists — the recorded per-covered-table outcomes a hit re-executes —
// and per-origin replay counters feed the counter map (§4.1.2).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/program.h"
#include "sim/engine.h"

namespace pipeleon::sim {

/// State of a non-cache table: entries + engine + update accounting.
class TableState {
public:
    explicit TableState(const ir::Table& table);

    const std::vector<ir::TableEntry>& entries() const { return entries_; }

    /// Replaces all entries (engine rebuilt).
    void set_entries(std::vector<ir::TableEntry> entries);

    /// Inserts an entry; returns false (and leaves state unchanged) when the
    /// entry is incompatible with the table or capacity is exhausted.
    bool insert(const ir::TableEntry& entry);
    /// Removes the entry with an identical key; false when absent.
    bool erase(const std::vector<ir::FieldMatch>& key);
    /// Replaces the action/data of the entry with an identical key.
    bool modify(const ir::TableEntry& entry);

    std::optional<MatchOutcome> lookup(const KeyVec& key) const {
        return engine_->lookup(key);
    }
    int m() const { return engine_->m(); }

    std::uint64_t update_count() const { return updates_; }
    void reset_update_count() { updates_ = 0; }

    /// Distinct prefix lengths / masks among live entries (cost-model m
    /// inputs exported to the profiler).
    int lpm_prefix_count() const;
    int ternary_mask_count() const;

private:
    ir::Table table_;
    std::vector<ir::TableEntry> entries_;
    std::unique_ptr<MatchEngine> engine_;
    std::uint64_t updates_ = 0;
};

/// One recorded covered-table outcome inside a cache entry.
struct ReplayStep {
    ir::NodeId origin_node = ir::kNoNode;  ///< deployed node id
    int action_index = -1;                 ///< action in the origin table
    std::vector<std::uint64_t> action_data;
};

/// Exact-match LRU flow cache with an insertion rate limiter.
class CacheStore {
public:
    explicit CacheStore(const ir::CacheConfig& config);

    struct CacheEntry {
        std::vector<ReplayStep> steps;
    };

    /// Looks up and LRU-touches the entry; nullptr on miss.
    const CacheEntry* lookup(const KeyVec& key);

    /// Attempts to install an entry at virtual time `now_seconds`. Evicts
    /// LRU victims at capacity; drops the insert (counted) when the rate
    /// limiter has no budget.
    bool insert(const KeyVec& key, CacheEntry entry, double now_seconds);

    /// Full invalidation (covered-table update, or redeployment).
    void clear();

    std::size_t size() const { return lru_.size(); }
    std::uint64_t inserts_dropped() const { return inserts_dropped_; }

private:
    using LruList = std::list<std::pair<KeyVec, CacheEntry>>;
    ir::CacheConfig config_;
    LruList lru_;  // front = most recent
    std::unordered_map<KeyVec, LruList::iterator, KeyVecHash> index_;
    // Token-bucket limiter for insertions.
    double tokens_;
    double last_refill_ = 0.0;
    std::uint64_t inserts_dropped_ = 0;
};

}  // namespace pipeleon::sim
