// sim/table_state.h — runtime state of deployed tables: the entry list plus
// its match engine for regular tables, and the flow-cache store (LRU with an
// insertion rate limiter, §3.2.2) for cache tables. Cache entries hold
// replay lists — the recorded per-covered-table outcomes a hit re-executes —
// and per-origin replay counters feed the counter map (§4.1.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "sim/engine.h"

namespace pipeleon::sim {

/// State of a non-cache table: entries + engine + update accounting.
class TableState {
public:
    explicit TableState(const ir::Table& table);

    const std::vector<ir::TableEntry>& entries() const { return entries_; }

    /// Replaces all entries (engine rebuilt).
    void set_entries(std::vector<ir::TableEntry> entries);

    /// Inserts an entry; returns false (and leaves state unchanged) when the
    /// entry is incompatible with the table or capacity is exhausted.
    bool insert(const ir::TableEntry& entry);
    /// Removes the entry with an identical key; false when absent.
    bool erase(const std::vector<ir::FieldMatch>& key);
    /// Replaces the action/data of the entry with an identical key.
    bool modify(const ir::TableEntry& entry);

    std::optional<MatchOutcome> lookup(const KeyVec& key) const {
        return engine_->lookup(key);
    }
    int m() const { return engine_->m(); }

    std::uint64_t update_count() const { return updates_; }
    void reset_update_count() { updates_ = 0; }

    /// Distinct prefix lengths / masks among live entries (cost-model m
    /// inputs exported to the profiler).
    int lpm_prefix_count() const;
    int ternary_mask_count() const;

private:
    ir::Table table_;
    std::vector<ir::TableEntry> entries_;
    std::unique_ptr<MatchEngine> engine_;
    std::uint64_t updates_ = 0;
};

/// One recorded covered-table outcome inside a cache entry.
struct ReplayStep {
    ir::NodeId origin_node = ir::kNoNode;  ///< deployed node id
    int action_index = -1;                 ///< action in the origin table
    std::vector<std::uint64_t> action_data;
};

/// Exact-match LRU flow cache with an insertion rate limiter.
///
/// Storage (ISSUE 5): one contiguous slot array with *intrusive* prev/next
/// LRU indices plus a flat open-addressing (linear-probe, backward-shift
/// delete) hash index mapping key hash -> slot. The previous
/// std::list + unordered_map layout paid two node allocations and several
/// dependent pointer loads per probe/insert; here a probe is a linear scan
/// of (hash, slot) cells and an LRU touch is three index writes. Slot and
/// index storage grow geometrically and are recycled through a free list,
/// so a warm cache performs zero heap allocations per lookup, touch,
/// insert, or eviction (recycled slots reuse their key/replay-vector
/// capacity). Semantics — LRU eviction order, refresh-on-reinsert, the
/// token-bucket insertion limiter, and zero-capacity behavior — are
/// bit-identical to the list-based store (tests mirror randomized op
/// sequences against a reference implementation).
class CacheStore {
public:
    explicit CacheStore(const ir::CacheConfig& config);

    struct CacheEntry {
        std::vector<ReplayStep> steps;
    };

    /// Eviction sink: called with the victim's key/entry *before* the slot
    /// is recycled. The callee may std::swap the contents into its own
    /// recycled buffers (the demotion path of sim::TieredStore); whatever it
    /// leaves behind is cleared, capacity retained. Swap semantics keep the
    /// cascade allocation-free in both directions. No sink (the default)
    /// means evictions discard, exactly as before.
    using EvictSink = void (*)(void* ctx, KeyVec& key, CacheEntry& entry);
    void set_evict_sink(EvictSink sink, void* ctx) {
        evict_sink_ = sink;
        evict_ctx_ = ctx;
    }

    /// Looks up and LRU-touches the entry; nullptr on miss. The pointer is
    /// valid until the next insert/clear (slot storage may be recycled).
    const CacheEntry* lookup(const KeyVec& key);

    /// The hash `lookup` computes internally — exposed so the batched match
    /// pipeline (sim/match_batch.h, DESIGN.md §15) can hash keys in SIMD
    /// groups up front and hand them back via prefetch()/lookup_hashed().
    static std::uint64_t key_hash(const KeyVec& key) { return KeyVecHash{}(key); }

    /// Hints the cache line of `h`'s home index cell into L1/L2. Cheap and
    /// safe to call speculatively (no-op on an empty store); the batched
    /// pipeline issues one per lane before resolving any probe.
    void prefetch(std::uint64_t h) const {
        if (!index_.empty()) {
            __builtin_prefetch(&index_[static_cast<std::size_t>(h) &
                                       (index_.size() - 1)]);
        }
    }

    /// lookup() with the key hash already computed (must equal key_hash(key);
    /// semantics and LRU effects are bit-identical to lookup()).
    const CacheEntry* lookup_hashed(const KeyVec& key, std::uint64_t h);

    /// Batched probe: resolves `n` lookups whose hashes were precomputed,
    /// software-pipelining the dependent loads (index cell -> slot -> key
    /// words) across lanes so the memory latency of one probe hides behind
    /// the others. Results and LRU effects are identical to calling
    /// lookup_hashed() per lane in order (touches are applied in lane order).
    void lookup_group(const KeyVec* const* keys, const std::uint64_t* hashes,
                      std::size_t n, const CacheEntry** out);

    /// Attempts to install an entry at virtual time `now_seconds`. Evicts
    /// LRU victims at capacity; drops the insert (counted) when the rate
    /// limiter has no budget.
    bool insert(const KeyVec& key, CacheEntry entry, double now_seconds);

    /// Promotion insert (tiered store only): installs by *swapping* the
    /// caller's buffers into a recycled slot — the caller gets the slot's
    /// old vectors back, so neither side allocates in steady state — and
    /// bypasses the token-bucket limiter (a promotion moves state the store
    /// already admitted, it is not a new insertion). Evicts LRU victims at
    /// capacity (cascading through the sink). Never called in single-tier
    /// mode, which keeps flat-LRU behavior bit-identical.
    void promote_swap(KeyVec& key, CacheEntry& entry);

    /// Full invalidation (covered-table update, or redeployment). Slot and
    /// index capacity are retained — invalidations are frequent (§3.2.2)
    /// and refilling into recycled storage is the allocation-free path.
    void clear();

    std::size_t size() const { return live_; }
    std::size_t capacity() const { return config_.capacity; }
    std::uint64_t inserts_dropped() const { return inserts_dropped_; }

private:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    /// One cached flow: payload plus intrusive LRU links (slot indices, not
    /// pointers — stable across slot-array growth).
    struct Slot {
        KeyVec key;
        CacheEntry entry;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };
    /// One open-addressing cell: the key's hash (so probes compare one word
    /// before touching the slot, and deletes can recompute home positions)
    /// plus the slot it points at; slot == kNil marks the cell empty.
    struct IndexCell {
        std::uint64_t hash = 0;
        std::uint32_t slot = kNil;
    };

    /// Index cell holding `key` (with hash `h`), or the empty cell where it
    /// would go.
    std::size_t probe(const KeyVec& key, std::uint64_t h) const;
    void index_insert(std::uint64_t h, std::uint32_t slot);
    /// Backward-shift deletion starting at cell `pos` (no tombstones).
    void index_erase(std::size_t pos);
    /// Doubles the index table and reinserts every live slot.
    void index_grow();

    void lru_unlink(std::uint32_t s);
    void lru_push_front(std::uint32_t s);
    /// Evicts the LRU tail back into the free list.
    void evict_tail();

    ir::CacheConfig config_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;  ///< recycled slot indices (LIFO)
    std::vector<IndexCell> index_;    ///< size is a power of two
    std::uint32_t head_ = kNil;        ///< most recently used
    std::uint32_t tail_ = kNil;        ///< least recently used (evicted first)
    std::size_t live_ = 0;
    // Token-bucket limiter for insertions.
    double tokens_;
    double last_refill_ = 0.0;
    std::uint64_t inserts_dropped_ = 0;
    EvictSink evict_sink_ = nullptr;
    void* evict_ctx_ = nullptr;
};

}  // namespace pipeleon::sim
