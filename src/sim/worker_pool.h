// sim/worker_pool.h — a persistent pool of host worker threads standing in
// for the NIC's run-to-completion cores. Threads are spawned once and woken
// per batch (spawning per batch would dominate the per-batch work the whole
// refactor is trying to amortize). The pool runs one job at a time: run()
// invokes fn(worker_id) on every worker and blocks until all return, which
// is exactly the barrier the emulator's counter-shard merge needs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pipeleon::sim {

class WorkerPool {
public:
    /// Spawns `workers` threads (at least 1).
    explicit WorkerPool(int workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    int size() const { return static_cast<int>(threads_.size()); }

    /// Runs fn(worker_id) on every worker and blocks until all complete.
    /// The first exception thrown by any worker is rethrown here after the
    /// barrier (the batch is still fully drained first).
    void run(const std::function<void(int)>& fn);

private:
    void worker_loop(int id);

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable work_cv_;   // workers wait here for a job
    std::condition_variable done_cv_;   // run() waits here for the barrier
    const std::function<void(int)>* job_ = nullptr;
    std::uint64_t generation_ = 0;  // bumped per job so workers run it once
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr first_error_;
};

}  // namespace pipeleon::sim
