// sim/worker_pool.h — a persistent pool of host worker threads standing in
// for the NIC's run-to-completion cores. Threads are spawned once and woken
// per batch (spawning per batch would dominate the per-batch work the whole
// refactor is trying to amortize). The pool runs one job at a time: run()
// invokes fn(worker_id) on every worker and blocks until all return, which
// is exactly the barrier the emulator's counter-shard merge needs.
//
// Topology awareness (ISSUE 5): each worker pins itself to a concrete CPU —
// locality-first assignment from util::Topology — via pthread_setaffinity_np
// so its counter shard, cache shard, and steering lane stay on the CPU (and
// NUMA node) that first touched them. Pinning is best-effort: non-Linux
// hosts, denied affinity syscalls, and the PIPELEON_PIN_WORKERS=0 escape
// hatch all degrade to floating threads with identical semantics.
//
// Wake protocol: instead of one mutex + two broadcast condvars (every wake
// contending one cache line and paying a thundering herd), each worker owns
// a cache-line-aligned slot of two futex-backed atomics (C++20 atomic
// wait/notify): `seq` is stored-released by run() to hand the worker a new
// generation, `done` is stored-released by the worker when it finishes. A
// batch wake is therefore O(workers) uncontended stores + notifies, and the
// join is a per-slot wait — no shared mutex on the batch path at all. The
// job itself is passed as a raw function pointer + context (run() is a
// template over the callable), so dispatch allocates nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/topology.h"

namespace pipeleon::sim {

/// Pool construction knobs. Defaults give the topology-pinned pool; tests
/// and the PIPELEON_PIN_WORKERS=0 environment escape hatch turn pinning off.
struct WorkerPoolOptions {
    /// Pin worker threads to CPUs. Effective only when the process-level
    /// gate (PIPELEON_PIN_WORKERS, default on) also allows it.
    bool pin = true;
    /// Topology to assign CPUs from; nullptr = detect the live host once.
    const util::Topology* topology = nullptr;
};

class WorkerPool {
public:
    /// Spawns `workers` threads (at least 1).
    explicit WorkerPool(int workers, WorkerPoolOptions options = {});
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    int size() const { return static_cast<int>(threads_.size()); }

    /// Runs fn(worker_id) on every worker and blocks until all complete.
    /// The first exception thrown by any worker is rethrown here after the
    /// barrier (the batch is still fully drained first). The callable is
    /// invoked through a function pointer + reference — no std::function,
    /// no allocation, so a batch dispatch is allocation-free.
    template <typename Fn>
    void run(Fn&& fn) {
        using F = std::remove_reference_t<Fn>;
        run_raw([](void* ctx, int id) { (*static_cast<F*>(ctx))(id); },
                const_cast<std::remove_const_t<F>*>(std::addressof(fn)));
    }

    /// CPU id worker `id` was asked to pin to, or -1 when unpinned.
    int cpu_of(int id) const;
    /// Workers whose affinity call actually succeeded.
    int pinned_count() const {
        return pinned_.load(std::memory_order_acquire);
    }

    /// Process-level pinning gate: PIPELEON_PIN_WORKERS unset / "1" = on,
    /// "0" (or any string starting with '0') = off. Read once per call so
    /// tests and benches can flip it between pools.
    static bool pin_enabled_from_env();

private:
    using RawFn = void (*)(void* ctx, int worker_id);

    /// One worker's wake/join mailbox. Its own cache line: the per-batch
    /// stores to one worker's slot never false-share with another's.
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> seq{0};   ///< run() bumps to wake
        std::atomic<std::uint64_t> done{0};  ///< worker echoes seq when done
    };

    void run_raw(RawFn fn, void* ctx);
    void worker_loop(int id);

    std::vector<std::thread> threads_;
    std::vector<int> cpu_assignment_;  ///< per worker, -1 = unpinned
    std::unique_ptr<Slot[]> slots_;    ///< one per worker, stable addresses

    // Published by run_raw() before the seq release-stores, read by workers
    // after their acquire-loads — ordered without any lock.
    RawFn job_ = nullptr;
    void* job_ctx_ = nullptr;
    std::uint64_t generation_ = 0;  ///< run() is single-caller, plain is fine

    std::atomic<bool> stop_{false};
    std::atomic<int> pinned_{0};
    std::mutex error_mu_;  ///< cold path: first worker exception only
    std::exception_ptr first_error_;
};

}  // namespace pipeleon::sim
