#include "sim/control_queue.h"

#include <thread>

namespace pipeleon::sim {

ControlQueue::ControlQueue() {
    // Vyukov stub node: the queue always holds at least one node, so a
    // producer never has to race for an empty→non-empty transition.
    Node* stub = new Node;
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
}

ControlQueue::~ControlQueue() {
    Node* node = head_;
    while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
    }
}

std::uint64_t ControlQueue::push(ControlOp op) {
    const std::uint64_t seq = pushed_.fetch_add(1, std::memory_order_relaxed);
    op.seq = seq;
    Node* node = new Node;
    node->op = std::move(op);
    // The exchange claims our position in the global order; the store links
    // us behind our predecessor. Between the two, the chain has a momentary
    // gap that drain() waits out.
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);

    // Backlog high-water mark. seq/drained_ are sampled racily, so this is
    // approximate under contention — it is a diagnostic, not a correctness
    // input — but exact whenever pushes don't overlap a drain.
    const std::uint64_t drained = drained_.load(std::memory_order_relaxed);
    const std::size_t depth_now =
        static_cast<std::size_t>(seq + 1 > drained ? seq + 1 - drained : 0);
    std::size_t seen = max_depth_.load(std::memory_order_relaxed);
    while (depth_now > seen &&
           !max_depth_.compare_exchange_weak(seen, depth_now,
                                             std::memory_order_relaxed)) {
    }
    return seq;
}

std::vector<ControlOp> ControlQueue::drain() {
    std::vector<ControlOp> out;
    Node* node = head_;
    while (true) {
        Node* next = node->next.load(std::memory_order_acquire);
        if (next == nullptr) {
            // Either the queue is empty (node is the tail) or a producer has
            // swung the tail past `node` but not yet stored the link. Spin
            // the gap out — it is two producer instructions wide.
            if (tail_.load(std::memory_order_acquire) == node) break;
            std::this_thread::yield();
            continue;
        }
        out.push_back(std::move(next->op));
        // Seeing next non-null (acquire) proves the producer that held
        // `node` as its predecessor finished with it — safe to free.
        delete node;
        node = next;
    }
    head_ = node;  // last consumed node becomes the new stub
    drained_.fetch_add(out.size(), std::memory_order_relaxed);
    return out;
}

std::size_t ControlQueue::depth() const {
    const std::uint64_t pushed = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t drained = drained_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(pushed > drained ? pushed - drained : 0);
}

std::uint64_t ControlQueue::total_pushed() const {
    return pushed_.load(std::memory_order_relaxed);
}

std::size_t ControlQueue::max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
}

}  // namespace pipeleon::sim
