#include "sim/control_queue.h"

namespace pipeleon::sim {

std::uint64_t ControlQueue::push(ControlOp op) {
    std::lock_guard<std::mutex> lock(mu_);
    op.seq = pushed_++;
    std::uint64_t seq = op.seq;
    ops_.push_back(std::move(op));
    if (ops_.size() > max_depth_) max_depth_ = ops_.size();
    return seq;
}

std::vector<ControlOp> ControlQueue::drain() {
    std::vector<ControlOp> out;
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(ops_);
    return out;
}

std::size_t ControlQueue::depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_.size();
}

std::uint64_t ControlQueue::total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
}

std::size_t ControlQueue::max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
}

}  // namespace pipeleon::sim
