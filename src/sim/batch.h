// sim/batch.h — batched data-plane types. Real SmartNIC datapaths never
// process one packet per call: NIC drivers hand the cores descriptor rings,
// and an RSS hash spreads flows across cores. PacketBatch is the emulator's
// descriptor ring (a contiguous run of parsed packets) and BatchResult the
// per-packet completion records plus the aggregate the benches consume.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.h"

namespace pipeleon::sim {

/// Outcome of processing one packet.
struct ProcessResult {
    double cycles = 0.0;
    bool dropped = false;
    int migrations = 0;
    int nodes_visited = 0;
    /// Ring path only (Emulator::poll): cycles the packet waited in its RX
    /// ring before a worker picked it up, from the descriptor's enqueue
    /// timestamp. 0 on the direct process/process_batch paths and for
    /// descriptors dispatched without a timestamp. Kept out of `cycles` (and
    /// the latency counters) so service latency stays comparable across
    /// paths; closed-loop benches add the two for sojourn time.
    double queue_cycles = 0.0;
};

/// A contiguous run of packets handed to the emulator in one call. Packets
/// are mutated in place (like Emulator::process does for a single packet);
/// results come back in input order regardless of worker interleaving.
struct PacketBatch {
    std::vector<Packet> packets;

    PacketBatch() = default;
    explicit PacketBatch(std::size_t n) : packets(n) {}

    std::size_t size() const { return packets.size(); }
    bool empty() const { return packets.empty(); }
    void clear() { packets.clear(); }
    void reserve(std::size_t n) { packets.reserve(n); }
    void push_back(Packet p) { packets.push_back(std::move(p)); }

    Packet& operator[](std::size_t i) { return packets[i]; }
    const Packet& operator[](std::size_t i) const { return packets[i]; }

    auto begin() { return packets.begin(); }
    auto end() { return packets.end(); }
    auto begin() const { return packets.begin(); }
    auto end() const { return packets.end(); }
};

/// Per-packet results (input order) plus batch aggregates.
struct BatchResult {
    std::vector<ProcessResult> results;
    double total_cycles = 0.0;
    std::uint64_t dropped = 0;
    int workers_used = 1;
    /// Control ops drained at this batch's boundary, before its packets ran.
    std::uint64_t control_ops_applied = 0;
    /// Ring path only (Emulator::poll): RX overflow drops accounted to this
    /// poll, completions reaped, and RX backlog left behind (nonzero when a
    /// cycle budget stopped the workers early). Zero on process_batch.
    std::uint64_t ring_dropped = 0;
    std::uint64_t ring_completed = 0;
    std::uint64_t ring_backlog = 0;
};

}  // namespace pipeleon::sim
