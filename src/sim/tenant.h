// sim/tenant.h — PF/VF-style multi-tenancy over the emulator (ISSUE 8). One
// physical NIC (a NicModel) is carved into N tenants, each owning its own
// program, tables, caches, counters, descriptor rings, and deployment
// epochs — the software analogue of SR-IOV virtual functions. The registry
// is the PF manager: it admits ingress traffic through per-tenant token
// buckets, carves the shared on-NIC memory (cache/table capacity) and core
// budget into per-tenant quotas, and services every tenant's rings from one
// driver loop.
//
// Isolation contract (test-enforced, tests/test_tenant.cpp): because each
// tenant runs on a private Emulator with a private control queue, one
// tenant's reconfigure storm, table churn, or deny-all deploy can change
// another tenant's packet results and latency accumulation by exactly zero
// bits. Epochs are per tenant — EpochSwap generalizes from "the program
// epoch" to "tenant T's program epoch" — so a reconfigure never stalls
// another tenant's batches. A single-tenant registry is bit-identical to
// driving the Emulator's make_rings/dispatch/poll path directly.
//
// Accounting contract (the conservation law the tests pin down): for every
// tenant, offered == enqueued + rate_limited + ring_dropped, and
// enqueued == completed + backlog once the rings are drained. Admission
// drops (token bucket) and overflow drops (RX ring) are counted separately
// so a noisy neighbor's sheds are attributable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "profile/profile.h"
#include "sim/emulator.h"
#include "sim/nic_model.h"
#include "sim/packet.h"
#include "sim/queue_pair.h"
#include "sim/rss.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace pipeleon::sim {

/// Dense tenant handle, assigned by the registry in add order.
using TenantId = std::uint32_t;
inline constexpr TenantId kNoTenant = 0xFFFFFFFFu;

/// Ingress admission: a token bucket against the virtual clock. rate <= 0
/// means unlimited (every packet admitted). The bucket seeds a full burst at
/// first use, so a tenant can always send its burst from a cold start.
class TokenBucket {
public:
    TokenBucket() = default;
    TokenBucket(double rate_pps, double burst)
        : rate_pps_(rate_pps), burst_(burst) {}

    bool unlimited() const { return rate_pps_ <= 0.0; }

    /// Refills for the elapsed virtual time and consumes `n` tokens if
    /// available. Time moving backwards refills nothing (clock resets in
    /// tests must not mint tokens).
    bool try_consume(double now, double n = 1.0);

    /// Tokens available at `now` (after refill), for observability.
    double available(double now);

private:
    void refill(double now);

    double rate_pps_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    double last_ = 0.0;
    bool primed_ = false;
};

/// The per-tenant carve-out of the shared NIC. Zeros mean "uncapped /
/// default" so a quota-less tenant behaves exactly like a solo emulator.
struct TenantQuota {
    /// Ingress rate limit (packets/sec of virtual time); 0 = unlimited.
    double ingress_pps = 0.0;
    /// Token-bucket depth; 0 = auto (max(64, ingress_pps / 100)).
    double ingress_burst = 0.0;

    /// Total flow-cache entries granted across the tenant's cache nodes —
    /// the tenant's slice of the shared on-NIC cache memory. Applied by
    /// clamping each cache node's CacheConfig::capacity to an equal share
    /// of the grant. 0 = uncapped.
    std::size_t cache_entries = 0;
    /// Per-tier carve-outs of the hierarchical flow-state memory
    /// (DESIGN.md §14): the tenant's slice of tier-1 (NIC DRAM) and tier-2
    /// (host memory) cache capacity, clamped onto every cache node's
    /// ir::TierConfig the same equal-share way on every deploy. 0 =
    /// uncapped. (`cache_entries` above is the tier-0 SRAM grant.)
    std::size_t dram_cache_entries = 0;
    std::size_t host_cache_entries = 0;
    /// Total match-table entries granted across non-cache tables (clamps
    /// ir::Table::size the same way). 0 = uncapped.
    std::size_t table_entries = 0;

    /// Run-to-completion cores visible to this tenant's emulator; 0 = all
    /// of the base model's cores.
    int cores = 0;

    /// Fraction of the registry's poll_all cycle budget reserved for this
    /// tenant — a hard partition, independent of how many tenants exist
    /// (the PF/VF analogue of pinning VFs to core sets). 0 = auto: tenants
    /// without an explicit share split the unreserved remainder equally.
    double cycles_share = 0.0;
};

/// Per-tenant ingress/egress accounting (monotonic counters except
/// `backlog`). Conservation: offered == enqueued + rate_limited +
/// ring_dropped always; enqueued == completed + backlog between polls.
struct TenantStats {
    std::uint64_t offered = 0;       ///< packets presented for admission
    std::uint64_t rate_limited = 0;  ///< shed by the token bucket
    std::uint64_t enqueued = 0;      ///< accepted into an RX ring
    std::uint64_t ring_dropped = 0;  ///< RX ring overflow drops
    std::uint64_t completed = 0;     ///< serviced to completion
    std::uint64_t policy_dropped = 0;  ///< completed with a drop verdict
    std::uint64_t backlog = 0;       ///< descriptors waiting in RX now
    /// Sum of per-packet (service + ring wait) cycles over completed
    /// packets — the bit-exact latency accumulator the isolation test
    /// compares.
    double latency_cycles = 0.0;
};

/// The PF manager: owns every tenant's emulator + rings and the shared
/// admission/budget policy. Driver-loop methods (offer/poll/advance_time)
/// are single-threaded by design — one driver services all tenants, like
/// one PMD thread servicing all VF queues. Control-plane calls against a
/// tenant's emulator (entry ops, epoch swaps) may come from any thread;
/// the emulator's own MPSC control queue makes that safe.
class TenantRegistry {
public:
    explicit TenantRegistry(NicModel base_model, RingConfig ring_cfg = {});

    // ------------------------------------------------------------ lifecycle

    /// Registers a tenant: carves the quota out of `program` (cache/table
    /// capacity clamps), builds its emulator on the carved NicModel, and
    /// returns its handle. Tenant names must be unique and non-empty.
    TenantId add_tenant(const std::string& name, ir::Program program,
                        TenantQuota quota = {},
                        profile::InstrumentationConfig instrumentation = {});

    std::size_t tenant_count() const { return tenants_.size(); }
    TenantId find(const std::string& name) const;
    const std::string& name(TenantId id) const;
    const TenantQuota& quota(TenantId id) const;

    /// The tenant's private data plane. Control-plane mutations through
    /// this reference affect only this tenant (per-tenant epochs).
    Emulator& emulator(TenantId id);
    const Emulator& emulator(TenantId id) const;

    /// Tenant T's deployment epoch (independent of every other tenant's).
    std::uint64_t epoch(TenantId id) const;

    /// Clamps the program's cache/table capacities to the tenant's quota
    /// (idempotent). Deploy paths call this so a tenant cannot grow past
    /// its carve-out by redeploying.
    void apply_quota(TenantId id, ir::Program& program) const;

    /// Quota-respecting full redeploy of the tenant's program: clamps, then
    /// reconfigures that tenant's emulator (bumping its epoch only).
    double reconfigure(TenantId id, ir::Program program);

    /// Deterministic mode for every tenant (single in-order queue per
    /// tenant, scalar-path execution — the isolation tests' configuration).
    void set_deterministic(bool on);

    // ------------------------------------------------------- admission path

    enum class Admit {
        Enqueued,     ///< accepted into the tenant's RX ring
        RateLimited,  ///< shed by the tenant's token bucket
        RingDropped,  ///< admitted but the RX ring was full
    };

    /// Admits one packet at the current virtual time: token bucket first,
    /// then RSS dispatch into the tenant's rings (drop-on-overflow, never
    /// blocking).
    Admit offer(TenantId id, const Packet& packet);

    /// Admits a whole batch; returns how many were enqueued.
    std::size_t offer(TenantId id, const PacketBatch& batch);

    // --------------------------------------------------------- service path

    /// Services one tenant's rings (one poll == one batch boundary for that
    /// tenant only). `cycle_budget` bounds the emulated cycles spent; 0 =
    /// unbudgeted. Returns the tenant's reused poll result.
    const BatchResult& poll(TenantId id, double cycle_budget = 0.0);

    /// Services every tenant, splitting `total_cycle_budget` by resolved
    /// shares (hard partition; see TenantQuota::cycles_share). 0 = every
    /// tenant polls unbudgeted.
    void poll_all(double total_cycle_budget = 0.0);

    /// The cycles_share actually in effect for the tenant (explicit, or the
    /// auto equal split of the unreserved remainder).
    double resolved_share(TenantId id) const;

    // --------------------------------------------------------- virtual time

    double now_seconds() const { return now_; }
    /// Advances every tenant's clock in lock-step (tenants share the NIC's
    /// wall clock even though their data planes are isolated).
    void advance_time(double dt);

    // ----------------------------------------------------------- accounting

    const TenantStats& stats(TenantId id) const;

    /// Registry-level metrics: per-tenant lanes named tenant.<name>.*
    /// (offered/rate_limited/enqueued/ring_dropped/completed/policy_dropped
    /// counters plus backlog/epoch gauges), synced at offer/poll boundaries.
    telemetry::MetricsRegistry& metrics() { return metrics_; }
    telemetry::MetricsSnapshot telemetry_snapshot() const;

private:
    struct Tenant {
        std::string name;
        TenantQuota quota;
        TokenBucket bucket;
        std::unique_ptr<Emulator> emu;
        std::optional<RssDispatcher> rings;
        int rings_workers = 0;
        bool rings_deterministic = false;
        TenantStats stats;
        TenantStats reported;  ///< counter values already pushed to metrics
        BatchResult out;       ///< reused poll output
        struct {
            telemetry::MetricId offered = 0, rate_limited = 0, enqueued = 0;
            telemetry::MetricId ring_dropped = 0, completed = 0;
            telemetry::MetricId policy_dropped = 0;
            telemetry::MetricId backlog = 0, epoch = 0;  ///< gauges
        } mid;
    };

    Tenant& tenant(TenantId id);
    const Tenant& tenant(TenantId id) const;
    /// (Re)builds the tenant's dispatcher when its worker count or
    /// deterministic flag moved since the rings were built. Only rebuilds
    /// while the rings are empty, so no descriptor is ever stranded.
    void ensure_rings(Tenant& t);
    /// Pushes counter deltas (stats - reported) and the gauges into the
    /// metrics registry.
    void sync_metrics(Tenant& t);

    NicModel base_;
    RingConfig ring_cfg_;
    bool deterministic_ = false;
    double now_ = 0.0;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    mutable telemetry::MetricsRegistry metrics_;
};

}  // namespace pipeleon::sim
