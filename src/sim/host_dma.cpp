#include "sim/host_dma.h"

#include <algorithm>

namespace pipeleon::sim {

HostDmaEngine::HostDmaEngine(std::size_t batch, DmaCosts costs)
    : batch_(std::max<std::size_t>(1, batch)),
      costs_(costs),
      ring_(ring_pow2(std::max<std::size_t>(2, batch_))) {}

double HostDmaEngine::fetch(std::uint32_t slot, std::uint64_t hash) {
    double cycles = costs_.per_entry + carry_;
    carry_ = 0.0;
    ++stats_.fetches;
    stats_.cycles += costs_.per_entry;
    if (!ring_.try_push(DmaFetch{slot, hash})) {
        // The ring is sized past `batch_`, so this only trips when the
        // doorbell threshold exceeds ring capacity after pow2 rounding;
        // complete the outstanding batch and retry rather than lose the
        // descriptor's accounting.
        cycles += complete(false);
        ring_.try_push(DmaFetch{slot, hash});
    }
    if (ring_.size() >= batch_) cycles += complete(false);
    return cycles;
}

void HostDmaEngine::flush() {
    if (ring_.empty()) return;
    carry_ += complete(true);
}

double HostDmaEngine::complete(bool is_flush) {
    const std::size_t n = ring_.consume([](DmaFetch&) { return true; });
    if (n == 0) return 0.0;
    ++stats_.batches;
    if (is_flush) ++stats_.flushes;
    stats_.cycles += costs_.setup;
    return costs_.setup;
}

}  // namespace pipeleon::sim
