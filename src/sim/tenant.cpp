#include "sim/tenant.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pipeleon::sim {

// ---------------------------------------------------------------- TokenBucket

void TokenBucket::refill(double now) {
    if (!primed_) {
        tokens_ = burst_;
        last_ = now;
        primed_ = true;
        return;
    }
    double dt = now - last_;
    if (dt > 0.0) {
        tokens_ = std::min(burst_, tokens_ + dt * rate_pps_);
        last_ = now;
    }
}

bool TokenBucket::try_consume(double now, double n) {
    if (unlimited()) return true;
    refill(now);
    if (tokens_ + 1e-9 < n) return false;
    tokens_ -= n;
    return true;
}

double TokenBucket::available(double now) {
    if (unlimited()) return std::numeric_limits<double>::infinity();
    refill(now);
    return tokens_;
}

// ------------------------------------------------------------- TenantRegistry

TenantRegistry::TenantRegistry(NicModel base_model, RingConfig ring_cfg)
    : base_(std::move(base_model)), ring_cfg_(ring_cfg) {}

namespace {

bool is_cache_table(const ir::Table& t) {
    return t.role == ir::TableRole::Cache ||
           t.role == ir::TableRole::MergedCache;
}

/// Clamps each selected table's capacity to an equal share of `grant`
/// (at least one entry each — a zero-capacity cache/table is a config
/// error, not a quota).
void clamp_capacities(ir::Program& program, std::size_t grant, bool caches) {
    if (grant == 0) return;
    std::size_t n = 0;
    for (const ir::Node& node : program.nodes()) {
        if (node.is_table() && is_cache_table(node.table) == caches) ++n;
    }
    if (n == 0) return;
    std::size_t per = std::max<std::size_t>(1, grant / n);
    for (ir::NodeId id = 0; id < program.node_count(); ++id) {
        ir::Node& node = program.node(id);
        if (!node.is_table() || is_cache_table(node.table) != caches) continue;
        if (caches) {
            node.table.cache.capacity = std::min(node.table.cache.capacity, per);
        } else {
            node.table.size = std::min(node.table.size, per);
        }
    }
}

/// Clamps each cache node's lower-tier capacities (ir::TierConfig) to an
/// equal share of the tenant's DRAM/host grants. Unlike tier 0, a zero
/// share disables the tier outright — lower tiers are an optimization, not
/// a correctness requirement, so a starved tenant just runs flat.
void clamp_tier_capacities(ir::Program& program, std::size_t dram_grant,
                           std::size_t host_grant) {
    if (dram_grant == 0 && host_grant == 0) return;
    std::size_t n = 0;
    for (const ir::Node& node : program.nodes()) {
        if (node.is_table() && is_cache_table(node.table)) ++n;
    }
    if (n == 0) return;
    for (ir::NodeId id = 0; id < program.node_count(); ++id) {
        ir::Node& node = program.node(id);
        if (!node.is_table() || !is_cache_table(node.table)) continue;
        ir::TierConfig& tiers = node.table.cache.tiers;
        if (dram_grant > 0) {
            tiers.dram_entries = std::min(tiers.dram_entries, dram_grant / n);
        }
        if (host_grant > 0) {
            tiers.host_entries = std::min(tiers.host_entries, host_grant / n);
        }
    }
}

}  // namespace

TenantId TenantRegistry::add_tenant(const std::string& name, ir::Program program,
                                    TenantQuota quota,
                                    profile::InstrumentationConfig instrumentation) {
    if (name.empty()) throw std::invalid_argument("tenant name must be non-empty");
    if (find(name) != kNoTenant) {
        throw std::invalid_argument("duplicate tenant name: " + name);
    }

    auto t = std::make_unique<Tenant>();
    t->name = name;
    t->quota = quota;
    if (quota.ingress_pps > 0.0) {
        double burst = quota.ingress_burst > 0.0
                           ? quota.ingress_burst
                           : std::max(64.0, quota.ingress_pps / 100.0);
        t->bucket = TokenBucket(quota.ingress_pps, burst);
    }

    // Carve the quota out of the shared NIC: cache/table capacity clamps on
    // the program, core clamp on the model the tenant's emulator sees.
    clamp_capacities(program, quota.cache_entries, /*caches=*/true);
    clamp_capacities(program, quota.table_entries, /*caches=*/false);
    clamp_tier_capacities(program, quota.dram_cache_entries,
                          quota.host_cache_entries);
    NicModel model = base_;
    if (quota.cores > 0) model.cores = std::min(model.cores, quota.cores);

    t->emu = std::make_unique<Emulator>(std::move(model), std::move(program),
                                        std::move(instrumentation));
    t->emu->set_deterministic(deterministic_);
    t->emu->set_time(now_);

    const std::string p = "tenant." + name + ".";
    t->mid.offered = metrics_.counter(p + "offered");
    t->mid.rate_limited = metrics_.counter(p + "rate_limited");
    t->mid.enqueued = metrics_.counter(p + "enqueued");
    t->mid.ring_dropped = metrics_.counter(p + "ring_dropped");
    t->mid.completed = metrics_.counter(p + "completed");
    t->mid.policy_dropped = metrics_.counter(p + "policy_dropped");
    t->mid.backlog = metrics_.gauge(p + "backlog");
    t->mid.epoch = metrics_.gauge(p + "epoch");

    tenants_.push_back(std::move(t));
    return static_cast<TenantId>(tenants_.size() - 1);
}

TenantRegistry::Tenant& TenantRegistry::tenant(TenantId id) {
    if (id >= tenants_.size()) throw std::out_of_range("bad TenantId");
    return *tenants_[id];
}

const TenantRegistry::Tenant& TenantRegistry::tenant(TenantId id) const {
    if (id >= tenants_.size()) throw std::out_of_range("bad TenantId");
    return *tenants_[id];
}

TenantId TenantRegistry::find(const std::string& name) const {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (tenants_[i]->name == name) return static_cast<TenantId>(i);
    }
    return kNoTenant;
}

const std::string& TenantRegistry::name(TenantId id) const {
    return tenant(id).name;
}

const TenantQuota& TenantRegistry::quota(TenantId id) const {
    return tenant(id).quota;
}

Emulator& TenantRegistry::emulator(TenantId id) { return *tenant(id).emu; }
const Emulator& TenantRegistry::emulator(TenantId id) const {
    return *tenant(id).emu;
}

std::uint64_t TenantRegistry::epoch(TenantId id) const {
    return tenant(id).emu->epoch();
}

void TenantRegistry::apply_quota(TenantId id, ir::Program& program) const {
    const TenantQuota& q = tenant(id).quota;
    clamp_capacities(program, q.cache_entries, /*caches=*/true);
    clamp_capacities(program, q.table_entries, /*caches=*/false);
    clamp_tier_capacities(program, q.dram_cache_entries,
                          q.host_cache_entries);
}

double TenantRegistry::reconfigure(TenantId id, ir::Program program) {
    apply_quota(id, program);
    return tenant(id).emu->reconfigure(std::move(program));
}

void TenantRegistry::set_deterministic(bool on) {
    deterministic_ = on;
    for (auto& t : tenants_) t->emu->set_deterministic(on);
}

void TenantRegistry::ensure_rings(Tenant& t) {
    int workers = t.emu->worker_count();
    bool det = t.emu->deterministic();
    if (t.rings && t.rings_workers == workers && t.rings_deterministic == det) {
        return;
    }
    // Never strand queued descriptors: a stale dispatcher keeps serving
    // until its rings drain (Emulator::poll handles a stale queue count by
    // falling back to in-order service).
    if (t.rings && t.rings->stats().depth != 0) return;
    t.rings.emplace(t.emu->make_rings(ring_cfg_));
    t.rings_workers = workers;
    t.rings_deterministic = det;
}

TenantRegistry::Admit TenantRegistry::offer(TenantId id, const Packet& packet) {
    Tenant& t = tenant(id);
    ++t.stats.offered;
    if (!t.bucket.try_consume(now_)) {
        ++t.stats.rate_limited;
        return Admit::RateLimited;
    }
    ensure_rings(t);
    if (t.rings->dispatch(packet, now_) < 0) {
        ++t.stats.ring_dropped;
        return Admit::RingDropped;
    }
    ++t.stats.enqueued;
    ++t.stats.backlog;
    return Admit::Enqueued;
}

std::size_t TenantRegistry::offer(TenantId id, const PacketBatch& batch) {
    std::size_t accepted = 0;
    for (const Packet& p : batch) {
        if (offer(id, p) == Admit::Enqueued) ++accepted;
    }
    sync_metrics(tenant(id));
    return accepted;
}

const BatchResult& TenantRegistry::poll(TenantId id, double cycle_budget) {
    Tenant& t = tenant(id);
    ensure_rings(t);
    t.emu->poll(*t.rings, t.out, cycle_budget);
    t.stats.completed += t.out.results.size();
    t.stats.policy_dropped += t.out.dropped;
    t.stats.backlog = t.out.ring_backlog;
    for (const ProcessResult& r : t.out.results) {
        t.stats.latency_cycles += r.cycles + r.queue_cycles;
    }
    sync_metrics(t);
    return t.out;
}

double TenantRegistry::resolved_share(TenantId id) const {
    const Tenant& me = tenant(id);
    if (me.quota.cycles_share > 0.0) return me.quota.cycles_share;
    double reserved = 0.0;
    std::size_t unreserved = 0;
    for (const auto& t : tenants_) {
        if (t->quota.cycles_share > 0.0) {
            reserved += t->quota.cycles_share;
        } else {
            ++unreserved;
        }
    }
    double leftover = std::max(0.0, 1.0 - reserved);
    return unreserved ? leftover / static_cast<double>(unreserved) : 0.0;
}

void TenantRegistry::poll_all(double total_cycle_budget) {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        TenantId id = static_cast<TenantId>(i);
        double budget = total_cycle_budget > 0.0
                            ? total_cycle_budget * resolved_share(id)
                            : 0.0;
        poll(id, budget);
    }
}

void TenantRegistry::advance_time(double dt) {
    now_ += dt;
    for (auto& t : tenants_) t->emu->advance_time(dt);
}

const TenantStats& TenantRegistry::stats(TenantId id) const {
    return tenant(id).stats;
}

void TenantRegistry::sync_metrics(Tenant& t) {
    if constexpr (telemetry::kEnabled) {
        metrics_.add(t.mid.offered, t.stats.offered - t.reported.offered);
        metrics_.add(t.mid.rate_limited,
                     t.stats.rate_limited - t.reported.rate_limited);
        metrics_.add(t.mid.enqueued, t.stats.enqueued - t.reported.enqueued);
        metrics_.add(t.mid.ring_dropped,
                     t.stats.ring_dropped - t.reported.ring_dropped);
        metrics_.add(t.mid.completed, t.stats.completed - t.reported.completed);
        metrics_.add(t.mid.policy_dropped,
                     t.stats.policy_dropped - t.reported.policy_dropped);
        metrics_.set_gauge(t.mid.backlog, static_cast<double>(t.stats.backlog));
        metrics_.set_gauge(t.mid.epoch, static_cast<double>(t.emu->epoch()));
        t.reported = t.stats;
    }
}

telemetry::MetricsSnapshot TenantRegistry::telemetry_snapshot() const {
    return metrics_.snapshot();
}

}  // namespace pipeleon::sim
