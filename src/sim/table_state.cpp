#include "sim/table_state.h"

#include <algorithm>

namespace pipeleon::sim {

TableState::TableState(const ir::Table& table)
    : table_(table), engine_(make_engine(table)) {
    engine_->rebuild(table_, entries_);
}

void TableState::set_entries(std::vector<ir::TableEntry> entries) {
    entries_ = std::move(entries);
    engine_->rebuild(table_, entries_);
    ++updates_;
}

bool TableState::insert(const ir::TableEntry& entry) {
    if (!entry.compatible_with(table_)) return false;
    if (entries_.size() >= table_.size) return false;
    entries_.push_back(entry);
    engine_->rebuild(table_, entries_);
    ++updates_;
    return true;
}

bool TableState::erase(const std::vector<ir::FieldMatch>& key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->key == key) {
            entries_.erase(it);
            engine_->rebuild(table_, entries_);
            ++updates_;
            return true;
        }
    }
    return false;
}

bool TableState::modify(const ir::TableEntry& entry) {
    for (ir::TableEntry& e : entries_) {
        if (e.key == entry.key) {
            e = entry;
            engine_->rebuild(table_, entries_);
            ++updates_;
            return true;
        }
    }
    return false;
}

int TableState::lpm_prefix_count() const {
    return ir::distinct_prefix_lengths(entries_);
}

int TableState::ternary_mask_count() const { return ir::distinct_masks(entries_); }

CacheStore::CacheStore(const ir::CacheConfig& config)
    : config_(config), tokens_(config.max_insert_per_sec) {}

const CacheStore::CacheEntry* CacheStore::lookup(const KeyVec& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    // Touch: move to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    return &lru_.front().second;
}

bool CacheStore::insert(const KeyVec& key, CacheEntry entry, double now_seconds) {
    // Refill the token bucket (burst bounded by one second of budget).
    if (now_seconds > last_refill_) {
        tokens_ = std::min(config_.max_insert_per_sec,
                           tokens_ + (now_seconds - last_refill_) *
                                         config_.max_insert_per_sec);
        last_refill_ = now_seconds;
    }
    if (tokens_ < 1.0) {
        ++inserts_dropped_;  // "insertions beyond the limit will be dropped"
        return false;
    }

    auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh the existing entry.
        it->second->second = std::move(entry);
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second = lru_.begin();
        tokens_ -= 1.0;
        return true;
    }
    while (lru_.size() >= config_.capacity && !lru_.empty()) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
    if (config_.capacity == 0) return false;
    lru_.emplace_front(key, std::move(entry));
    index_.emplace(key, lru_.begin());
    tokens_ -= 1.0;
    return true;
}

void CacheStore::clear() {
    lru_.clear();
    index_.clear();
}

}  // namespace pipeleon::sim
