#include "sim/table_state.h"

#include <algorithm>

namespace pipeleon::sim {

TableState::TableState(const ir::Table& table)
    : table_(table), engine_(make_engine(table)) {
    engine_->rebuild(table_, entries_);
}

void TableState::set_entries(std::vector<ir::TableEntry> entries) {
    entries_ = std::move(entries);
    engine_->rebuild(table_, entries_);
    ++updates_;
}

bool TableState::insert(const ir::TableEntry& entry) {
    if (!entry.compatible_with(table_)) return false;
    if (entries_.size() >= table_.size) return false;
    entries_.push_back(entry);
    engine_->rebuild(table_, entries_);
    ++updates_;
    return true;
}

bool TableState::erase(const std::vector<ir::FieldMatch>& key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->key == key) {
            entries_.erase(it);
            engine_->rebuild(table_, entries_);
            ++updates_;
            return true;
        }
    }
    return false;
}

bool TableState::modify(const ir::TableEntry& entry) {
    for (ir::TableEntry& e : entries_) {
        if (e.key == entry.key) {
            e = entry;
            engine_->rebuild(table_, entries_);
            ++updates_;
            return true;
        }
    }
    return false;
}

int TableState::lpm_prefix_count() const {
    return ir::distinct_prefix_lengths(entries_);
}

int TableState::ternary_mask_count() const { return ir::distinct_masks(entries_); }

CacheStore::CacheStore(const ir::CacheConfig& config)
    : config_(config), tokens_(config.max_insert_per_sec) {}

// ---------------------------------------------------------- hash index

std::size_t CacheStore::probe(const KeyVec& key, std::uint64_t h) const {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (true) {
        const IndexCell& cell = index_[i];
        if (cell.slot == kNil) return i;
        if (cell.hash == h && slots_[cell.slot].key == key) return i;
        i = (i + 1) & mask;
    }
}

void CacheStore::index_insert(std::uint64_t h, std::uint32_t slot) {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (index_[i].slot != kNil) i = (i + 1) & mask;
    index_[i].hash = h;
    index_[i].slot = slot;
}

void CacheStore::index_erase(std::size_t pos) {
    // Backward-shift deletion: close the hole by sliding back any later
    // cluster member whose home position precedes the hole, so probes never
    // need tombstones.
    const std::size_t mask = index_.size() - 1;
    std::size_t hole = pos;
    std::size_t i = pos;
    while (true) {
        i = (i + 1) & mask;
        if (index_[i].slot == kNil) break;
        const std::size_t home = static_cast<std::size_t>(index_[i].hash) & mask;
        // Cell i may move into the hole iff the hole lies on i's probe path:
        // distance(home -> i) >= distance(hole -> i) (cyclic).
        if (((i - home) & mask) >= ((i - hole) & mask)) {
            index_[hole] = index_[i];
            hole = i;
        }
    }
    index_[hole].slot = kNil;
    index_[hole].hash = 0;
}

void CacheStore::index_grow() {
    std::size_t want = index_.empty() ? 16 : index_.size() * 2;
    index_.assign(want, IndexCell{});
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
        index_insert(KeyVecHash{}(slots_[s].key), s);
    }
}

// ------------------------------------------------------------ LRU links

void CacheStore::lru_unlink(std::uint32_t s) {
    Slot& slot = slots_[s];
    if (slot.prev != kNil) {
        slots_[slot.prev].next = slot.next;
    } else {
        head_ = slot.next;
    }
    if (slot.next != kNil) {
        slots_[slot.next].prev = slot.prev;
    } else {
        tail_ = slot.prev;
    }
    slot.prev = slot.next = kNil;
}

void CacheStore::lru_push_front(std::uint32_t s) {
    Slot& slot = slots_[s];
    slot.prev = kNil;
    slot.next = head_;
    if (head_ != kNil) slots_[head_].prev = s;
    head_ = s;
    if (tail_ == kNil) tail_ = s;
}

void CacheStore::evict_tail() {
    const std::uint32_t victim = tail_;
    index_erase(probe(slots_[victim].key, KeyVecHash{}(slots_[victim].key)));
    lru_unlink(victim);
    // Demotion hook: hand the victim to the sink (which swaps the contents
    // away) before recycling the slot.
    if (evict_sink_ != nullptr) {
        evict_sink_(evict_ctx_, slots_[victim].key, slots_[victim].entry);
    }
    // Recycle: the slot keeps its key/steps vector capacity for the next
    // insert (the allocation-free refill path).
    slots_[victim].key.clear();
    slots_[victim].entry.steps.clear();
    free_.push_back(victim);
    --live_;
}

// ------------------------------------------------------------ operations

const CacheStore::CacheEntry* CacheStore::lookup(const KeyVec& key) {
    if (live_ == 0) return nullptr;
    return lookup_hashed(key, KeyVecHash{}(key));
}

const CacheStore::CacheEntry* CacheStore::lookup_hashed(const KeyVec& key,
                                                        std::uint64_t h) {
    if (live_ == 0) return nullptr;
    const std::size_t pos = probe(key, h);
    if (index_[pos].slot == kNil) return nullptr;
    const std::uint32_t s = index_[pos].slot;
    // Touch: move to the front of the LRU order.
    if (head_ != s) {
        lru_unlink(s);
        lru_push_front(s);
    }
    return &slots_[s].entry;
}

void CacheStore::lookup_group(const KeyVec* const* keys,
                              const std::uint64_t* hashes, std::size_t n,
                              const CacheEntry** out) {
    if (live_ == 0) {
        for (std::size_t i = 0; i < n; ++i) out[i] = nullptr;
        return;
    }
    // Software-pipelined probe: each stage issues the loads the next stage
    // depends on for *every* lane before any lane advances, so up to kChunk
    // probe-memory latencies overlap instead of serializing.
    constexpr std::size_t kChunk = 64;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m = std::min(kChunk, n - base);
        // Stage 1: pull each lane's home index cell toward L1.
        for (std::size_t i = 0; i < m; ++i) {
            __builtin_prefetch(
                &index_[static_cast<std::size_t>(hashes[base + i]) & mask]);
        }
        // Stage 2: hash-only cluster scan (no slot touch yet) to find each
        // lane's candidate slot, prefetching the slot as soon as it's known.
        std::uint32_t cand[kChunk];
        for (std::size_t i = 0; i < m; ++i) {
            const std::uint64_t h = hashes[base + i];
            std::size_t p = static_cast<std::size_t>(h) & mask;
            std::uint32_t slot = kNil;
            while (true) {
                const IndexCell& cell = index_[p];
                if (cell.slot == kNil) break;
                if (cell.hash == h) {
                    slot = cell.slot;
                    break;
                }
                p = (p + 1) & mask;
            }
            cand[i] = slot;
            if (slot != kNil) __builtin_prefetch(&slots_[slot]);
        }
        // Stage 3: prefetch each candidate's key words for the verify.
        for (std::size_t i = 0; i < m; ++i) {
            if (cand[i] != kNil) __builtin_prefetch(slots_[cand[i]].key.data());
        }
        // Stage 4: verify keys and apply LRU touches in lane order, so the
        // final LRU state is bit-identical to sequential lookup_hashed calls.
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t lane = base + i;
            const std::uint32_t s = cand[i];
            if (s == kNil) {
                out[lane] = nullptr;
                continue;
            }
            if (slots_[s].key == *keys[lane]) {
                if (head_ != s) {
                    lru_unlink(s);
                    lru_push_front(s);
                }
                out[lane] = &slots_[s].entry;
            } else {
                // A different key in the cluster shares this 64-bit hash —
                // vanishingly rare; resolve with the exact scalar probe.
                out[lane] = lookup_hashed(*keys[lane], hashes[lane]);
            }
        }
    }
}

bool CacheStore::insert(const KeyVec& key, CacheEntry entry, double now_seconds) {
    // Refill the token bucket (burst bounded by one second of budget).
    if (now_seconds > last_refill_) {
        tokens_ = std::min(config_.max_insert_per_sec,
                           tokens_ + (now_seconds - last_refill_) *
                                         config_.max_insert_per_sec);
        last_refill_ = now_seconds;
    }
    if (tokens_ < 1.0) {
        ++inserts_dropped_;  // "insertions beyond the limit will be dropped"
        return false;
    }

    const std::uint64_t h = KeyVecHash{}(key);
    if (!index_.empty()) {
        const std::size_t pos = probe(key, h);
        if (index_[pos].slot != kNil) {
            // Refresh the existing entry.
            const std::uint32_t s = index_[pos].slot;
            slots_[s].entry = std::move(entry);
            if (head_ != s) {
                lru_unlink(s);
                lru_push_front(s);
            }
            tokens_ -= 1.0;
            return true;
        }
    }
    while (live_ >= config_.capacity && live_ > 0) evict_tail();
    if (config_.capacity == 0) return false;

    // Keep the linear-probe clusters short: grow at ~70% occupancy.
    if (index_.empty() || (live_ + 1) * 10 >= index_.size() * 7) index_grow();

    std::uint32_t s;
    if (!free_.empty()) {
        s = free_.back();
        free_.pop_back();
        slots_[s].key = key;  // reuses the recycled vector's capacity
        slots_[s].entry = std::move(entry);
    } else {
        s = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{key, std::move(entry), kNil, kNil});
    }
    lru_push_front(s);
    index_insert(h, s);
    ++live_;
    tokens_ -= 1.0;
    return true;
}

void CacheStore::promote_swap(KeyVec& key, CacheEntry& entry) {
    if (config_.capacity == 0) return;
    const std::uint64_t h = KeyVecHash{}(key);
    if (!index_.empty()) {
        const std::size_t pos = probe(key, h);
        if (index_[pos].slot != kNil) {
            // Already resident (tiers are normally disjoint; be safe):
            // refresh in place.
            const std::uint32_t s = index_[pos].slot;
            std::swap(slots_[s].entry, entry);
            if (head_ != s) {
                lru_unlink(s);
                lru_push_front(s);
            }
            return;
        }
    }
    while (live_ >= config_.capacity && live_ > 0) evict_tail();
    if (index_.empty() || (live_ + 1) * 10 >= index_.size() * 7) index_grow();

    std::uint32_t s;
    if (!free_.empty()) {
        s = free_.back();
        free_.pop_back();
    } else {
        s = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{});
    }
    std::swap(slots_[s].key, key);
    std::swap(slots_[s].entry, entry);
    lru_push_front(s);
    index_insert(h, s);
    ++live_;
}

void CacheStore::clear() {
    for (std::uint32_t s = head_; s != kNil;) {
        const std::uint32_t next = slots_[s].next;
        slots_[s].key.clear();
        slots_[s].entry.steps.clear();
        slots_[s].prev = slots_[s].next = kNil;
        free_.push_back(s);
        s = next;
    }
    head_ = tail_ = kNil;
    live_ = 0;
    std::fill(index_.begin(), index_.end(), IndexCell{});
}

}  // namespace pipeleon::sim
