#include "sim/rss.h"

#include <algorithm>

namespace pipeleon::sim {

std::uint64_t rss_hash(const Packet& packet, const FieldId* fields,
                       std::size_t n_fields) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < n_fields; ++i) {
        h ^= packet.get(fields[i]);
        h *= 1099511628211ULL;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

RssDispatcher::RssDispatcher(std::size_t queues,
                             std::vector<FieldId> steer_fields,
                             const RingConfig& cfg)
    : steer_(std::move(steer_fields)) {
    if (queues == 0) queues = 1;
    queues_.reserve(queues);
    for (std::size_t i = 0; i < queues; ++i) {
        queues_.push_back(std::make_unique<QueuePair>(cfg));
    }
}

void RssDispatcher::set_steer_fields(std::vector<FieldId> fields,
                                     std::uint64_t epoch) {
    steer_ = std::move(fields);
    steer_epoch_ = epoch;
    hasher_.reserve(steer_.size());
}

void RssDispatcher::set_steer_map(std::vector<std::uint32_t> reta) {
    reta_ = std::move(reta);
}

int RssDispatcher::dispatch(const Packet& packet, double now) {
    return dispatch_hashed(packet, rss_hash(packet, steer_.data(), steer_.size()),
                           now);
}

int RssDispatcher::dispatch_hashed(const Packet& packet, std::uint64_t h,
                                   double now) {
    std::size_t q = 0;
    if (queues_.size() > 1) {
        // RETA indirection when installed (clamped, so a table built for a
        // different queue count can never index out of range), plain modulo
        // otherwise.
        q = reta_.empty()
                ? static_cast<std::size_t>(
                      h % static_cast<std::uint64_t>(queues_.size()))
                : static_cast<std::size_t>(
                      reta_[static_cast<std::size_t>(h) & (reta_.size() - 1)]) %
                      queues_.size();
    }
    // Fill the ring slot in place: the slot packet's field vector reuses its
    // capacity, so a steady-state dispatch is allocation-free.
    const bool ok = queues_[q]->rx().try_emplace([&](RxDesc& d) {
        d.packet = packet;
        d.seq = seq_;
        d.enq_time = now;
        d.flow_hash = h;
    });
    ++seq_;  // a dropped packet still consumes an arrival number
    return ok ? static_cast<int>(q) : -1;
}

std::size_t RssDispatcher::dispatch_batch(const PacketBatch& batch, double now) {
    // Hash in SIMD groups of kHashGroup, then funnel each packet through the
    // single-packet path with its hash in hand — one hash per packet per
    // boundary, computed by the same kernel the emulator's steer plan uses.
    std::size_t accepted = 0;
    std::uint64_t h[kHashGroup];
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; i += kHashGroup) {
        const std::size_t g = std::min(kHashGroup, n - i);
        if (g == kHashGroup) {
            hasher_.rss_group(
                [&](std::size_t lane) -> const Packet& { return batch[i + lane]; },
                g, steer_.data(), steer_.size(), h);
        } else {
            for (std::size_t lane = 0; lane < g; ++lane) {
                h[lane] = rss_hash(batch[i + lane], steer_.data(), steer_.size());
            }
        }
        for (std::size_t lane = 0; lane < g; ++lane) {
            if (dispatch_hashed(batch[i + lane], h[lane], now) >= 0) ++accepted;
        }
    }
    return accepted;
}

RingStats RssDispatcher::stats() const {
    RingStats total;
    for (const auto& qp : queues_) {
        const RingStats s = qp->rx_stats();
        total.enqueued += s.enqueued;
        total.dequeued += s.dequeued;
        total.dropped += s.dropped;
        total.depth += s.depth;
    }
    return total;
}

RingStats RssDispatcher::take_delta() {
    const RingStats now = stats();
    RingStats delta;
    delta.enqueued = now.enqueued - accounted_.enqueued;
    delta.dequeued = now.dequeued - accounted_.dequeued;
    delta.dropped = now.dropped - accounted_.dropped;
    delta.depth = now.depth;  // absolute, not a delta
    accounted_ = now;
    return delta;
}

}  // namespace pipeleon::sim
