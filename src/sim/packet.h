// sim/packet.h — packets and header fields. The emulator operates on parsed
// representations: a packet is a vector of 64-bit header/metadata field
// values indexed through a FieldTable (string interner), which is how BMv2
// exposes headers to the match-action pipeline after parsing. A simple
// byte codec (serialize/deserialize against a declared layout) covers the
// cases where wire bytes matter (tests, pcap-style fixtures).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pipeleon::sim {

/// Dense field identifier.
using FieldId = std::int32_t;
inline constexpr FieldId kNoField = -1;

/// Interns field names to dense ids shared between the emulator, the
/// traffic generator, and tests.
class FieldTable {
public:
    /// Returns the id for `name`, creating one if needed.
    FieldId intern(std::string_view name);
    /// Returns the id or kNoField when the name was never interned.
    FieldId find(std::string_view name) const;
    const std::string& name(FieldId id) const;
    std::size_t size() const { return names_.size(); }

private:
    std::unordered_map<std::string, FieldId> ids_;
    std::vector<std::string> names_;
};

/// A parsed packet: field values plus processing status. Fields the program
/// never set read as 0 (like uninitialized metadata in BMv2).
class Packet {
public:
    Packet() = default;
    explicit Packet(std::size_t field_count) : fields_(field_count, 0) {}

    std::uint64_t get(FieldId id) const {
        if (id < 0 || static_cast<std::size_t>(id) >= fields_.size()) return 0;
        return fields_[static_cast<std::size_t>(id)];
    }
    void set(FieldId id, std::uint64_t value) {
        if (id < 0) return;
        if (static_cast<std::size_t>(id) >= fields_.size()) {
            fields_.resize(static_cast<std::size_t>(id) + 1, 0);
        }
        fields_[static_cast<std::size_t>(id)] = value;
    }

    bool dropped() const { return dropped_; }
    void mark_dropped() { dropped_ = true; }

    std::uint64_t egress_port() const { return egress_port_; }
    void set_egress_port(std::uint64_t port) { egress_port_ = port; }

    /// Wire size used for throughput accounting (paper workloads: 512 B).
    std::size_t wire_bytes() const { return wire_bytes_; }
    void set_wire_bytes(std::size_t bytes) { wire_bytes_ = bytes; }

private:
    std::vector<std::uint64_t> fields_;
    bool dropped_ = false;
    std::uint64_t egress_port_ = 0;
    std::size_t wire_bytes_ = 512;
};

/// Declarative wire layout: fields in order with bit widths (multiples of 8
/// for the codec). Enables byte-level round trips for fixtures and tests.
struct HeaderLayout {
    struct FieldSpec {
        std::string name;
        int width_bits = 32;
    };
    std::vector<FieldSpec> fields;

    std::size_t byte_size() const;
};

/// Serializes the layout's fields (big-endian) into bytes.
std::vector<std::uint8_t> serialize(const Packet& packet, const HeaderLayout& layout,
                                    const FieldTable& fields);

/// Parses bytes into a packet; returns nullopt when `data` is too short.
std::optional<Packet> deserialize(const std::vector<std::uint8_t>& data,
                                  const HeaderLayout& layout, FieldTable& fields);

}  // namespace pipeleon::sim
