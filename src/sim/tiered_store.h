// sim/tiered_store.h — hierarchical flow-state memory (DESIGN.md §14): a
// three-tier store scaling the flow cache from the on-NIC SRAM budget to
// tens of millions of flows.
//
//   tier 0  SRAM      the existing flat open-addressing LRU (CacheStore),
//                     unchanged hot path;
//   tier 1  NIC DRAM  a larger FlatTier, each access charged l_tier_dram
//                     extra cycles;
//   tier 2  host      the largest FlatTier reached over the emulated DMA
//                     engine: l_tier_host extra cycles plus a descriptor-
//                     batched fetch (sim/host_dma.h).
//
// Movement between tiers:
//   * demotion — an eviction from tier k cascades into tier k+1 through the
//     CacheStore/FlatTier eviction sinks. The victim's buffers are swapped,
//     not copied, so the cascade is allocation-free.
//   * promotion — profile-driven. Every lower-tier hit bumps a per-entry
//     counter (plain non-atomic u32 in the slot: the hot path stays free of
//     shared state); when it crosses `promote_hits` the entry is queued on a
//     bounded pending list and moved one tier up at the next batch boundary
//     (flush_batch), never mid-batch. Counters decay by halving every
//     `decay_every` flushes so old heat expires; decay is applied lazily at
//     touch time from an epoch delta, keeping flushes O(pending) instead of
//     O(live).
//
// Single-tier mode (tiers disabled in ir::TierConfig) delegates every
// operation straight to the embedded CacheStore with no sink installed —
// behavior is bit-identical to the flat LRU by construction (test-enforced:
// randomized op mirroring in tests/test_tiered_store.cpp).
//
// Invariant: a key lives in at most one tier. Lookups probe top-down, so
// tier 0 always answers first; inserts land in tier 0 and erase any stale
// lower-tier copy; promotions/demotions move entries, never duplicate them.
// Conservation (test- and bench-enforced): lookups == Σ per-tier hits +
// misses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/table.h"
#include "sim/engine.h"
#include "sim/host_dma.h"
#include "sim/table_state.h"

namespace pipeleon::sim {

/// Per-tier access costs (mirrors the cost::CostParams fields so the store
/// is testable without a cost model). All values are *extra* cycles on top
/// of the tier-0 probe the lookup already paid.
struct TierCosts {
    double l_tier_dram = 0.0;
    double l_tier_host = 0.0;
    double dma_setup = 0.0;
    double dma_per_entry = 0.0;
};

/// Monotonic tiered-store accounting (read by the emulator's tier.* metrics
/// and by the scale bench).
struct TierStats {
    std::uint64_t lookups = 0;
    std::uint64_t sram_hits = 0;
    std::uint64_t dram_hits = 0;
    std::uint64_t host_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t promotions = 0;  ///< entries moved one tier up
    std::uint64_t demotions = 0;   ///< evictions caught by a lower tier
    std::uint64_t drops = 0;       ///< evictions off the last tier
    std::uint64_t dma_batches = 0;
    std::uint64_t dma_fetches = 0;
    double tier_cycles = 0.0;  ///< extra cycles charged for tier-1/2 access
};

/// Lower-tier flat store: the CacheStore layout (contiguous slots, intrusive
/// LRU links, linear-probe index with backward-shift deletion, slot free
/// list) plus per-slot hit counters with lazy epoch decay and slot-addressed
/// extraction for promotion. No insertion limiter — demotions and
/// promotions move already-admitted state.
class FlatTier {
public:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    using Entry = CacheStore::CacheEntry;
    using EvictSink = void (*)(void* ctx, KeyVec& key, Entry& entry);

    explicit FlatTier(std::size_t capacity) : capacity_(capacity) {}

    void set_evict_sink(EvictSink sink, void* ctx) {
        evict_sink_ = sink;
        evict_ctx_ = ctx;
    }

    /// Slot holding `key` (hash `h`), or kNil. Does not touch LRU/hits.
    std::uint32_t find(const KeyVec& key, std::uint64_t h) const;

    /// LRU-front + lazily-decayed hit-count bump; returns the new count.
    std::uint32_t touch(std::uint32_t s);

    const Entry& entry(std::uint32_t s) const { return slots_[s].entry; }
    std::uint64_t slot_hash(std::uint32_t s) const { return slots_[s].hash; }
    bool slot_live(std::uint32_t s) const {
        return s < slots_.size() && slots_[s].live;
    }

    /// Installs by swapping the caller's buffers into a recycled slot (the
    /// caller gets the slot's old capacity back). Evicts the LRU tail
    /// through the sink at capacity. With capacity 0 the entry goes
    /// straight to the sink (or is discarded).
    void insert_swap(KeyVec& key, Entry& entry);

    /// Removes slot `s`, swapping its contents out into key/entry.
    void extract(std::uint32_t s, KeyVec& key, Entry& entry);

    /// Removes `key` if present (contents discarded, buffers recycled).
    bool erase(const KeyVec& key, std::uint64_t h);

    /// Advances the decay epoch: every counter is halved once per epoch
    /// step, applied lazily on the next touch.
    void advance_epoch() { ++epoch_; }

    void clear();
    std::size_t size() const { return live_; }
    std::size_t capacity() const { return capacity_; }

private:
    struct Slot {
        KeyVec key;
        Entry entry;
        std::uint64_t hash = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
        std::uint32_t hits = 0;
        std::uint32_t epoch = 0;
        bool live = false;
    };
    struct IndexCell {
        std::uint64_t hash = 0;
        std::uint32_t slot = kNil;
    };

    std::size_t probe(const KeyVec& key, std::uint64_t h) const;
    void index_insert(std::uint64_t h, std::uint32_t slot);
    void index_erase(std::size_t pos);
    void index_grow();
    void lru_unlink(std::uint32_t s);
    void lru_push_front(std::uint32_t s);
    void evict_tail();
    void release_slot(std::uint32_t s);

    std::size_t capacity_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;
    std::vector<IndexCell> index_;
    std::uint32_t head_ = kNil;
    std::uint32_t tail_ = kNil;
    std::size_t live_ = 0;
    std::uint32_t epoch_ = 0;
    EvictSink evict_sink_ = nullptr;
    void* evict_ctx_ = nullptr;
};

/// The SRAM -> DRAM -> host tiered flow-state store. Drop-in successor of a
/// bare CacheStore in the emulator's per-worker cache shards.
class TieredStore {
public:
    using CacheEntry = CacheStore::CacheEntry;

    TieredStore(const ir::CacheConfig& config, TierCosts costs);

    // The demotion sinks capture `this`; moving would dangle them.
    TieredStore(const TieredStore&) = delete;
    TieredStore& operator=(const TieredStore&) = delete;

    /// Lookup outcome: the entry (tier-0 pointer validity rules apply: valid
    /// until the next mutation), which tier answered (-1 on miss), and the
    /// extra cycles the access costs beyond the tier-0 probe (0 for tier-0
    /// hits and misses — single-tier cycle accounting is untouched).
    struct Result {
        const CacheEntry* entry = nullptr;
        int tier = -1;
        double extra_cycles = 0.0;
    };

    Result lookup(const KeyVec& key);

    /// The hash lookup() computes internally (KeyVecHash over the key
    /// words), exposed for the batched match pipeline (DESIGN.md §15).
    static std::uint64_t key_hash(const KeyVec& key) {
        return CacheStore::key_hash(key);
    }

    /// Hints the SRAM-tier home index cell of `h` into cache; issued per
    /// lane by the batched pipeline before any probe resolves.
    void prefetch(std::uint64_t h) const { sram_.prefetch(h); }

    /// lookup() with the key hash precomputed (must equal key_hash(key)).
    /// Bit-identical results and side effects; the hash is computed exactly
    /// once and reused for the lower tiers, where lookup() used to hash the
    /// key a second time on SRAM miss.
    Result lookup_hashed(const KeyVec& key, std::uint64_t h);

    /// Installs into tier 0 with CacheStore semantics (LRU refresh, token-
    /// bucket limiter, eviction cascade). A successful insert erases any
    /// stale copy of the key from the lower tiers so the disjointness
    /// invariant holds.
    bool insert(const KeyVec& key, CacheEntry entry, double now_seconds);

    /// Batch boundary: flush the partial DMA batch, apply queued
    /// promotions, advance the decay epoch every `decay_every` flushes.
    /// No-op in single-tier mode.
    void flush_batch();

    /// Full invalidation across all tiers; storage capacity retained.
    void clear();

    /// Live entries across all tiers.
    std::size_t size() const;
    /// Live entries in one tier (0..2).
    std::size_t tier_size(int tier) const;

    std::uint64_t inserts_dropped() const { return sram_.inserts_dropped(); }
    bool tiered() const { return tiered_; }
    const ir::TierConfig& tier_config() const { return config_.tiers; }

    /// Monotonic stats with the DMA engine's view folded in.
    TierStats stats() const;

private:
    static void demote_from_sram(void* ctx, KeyVec& key, CacheEntry& entry);
    static void demote_from_dram(void* ctx, KeyVec& key, CacheEntry& entry);
    static void demote_from_host(void* ctx, KeyVec& key, CacheEntry& entry);
    /// Places an eviction victim from tier `from` into the next enabled
    /// tier below, or counts a drop.
    void demote(int from, KeyVec& key, CacheEntry& entry);
    void maybe_queue_promotion(int tier, std::uint32_t slot,
                               std::uint64_t hash, std::uint32_t hits);

    /// A queued promotion: re-verified against the slot's hash at flush
    /// time (the slot may have been recycled since).
    struct Promo {
        std::uint8_t tier = 0;
        std::uint32_t slot = 0;
        std::uint64_t hash = 0;
    };
    static constexpr std::size_t kPendingCap = 256;

    ir::CacheConfig config_;
    TierCosts costs_;
    bool tiered_ = false;
    bool dram_enabled_ = false;
    bool host_enabled_ = false;
    CacheStore sram_;
    FlatTier dram_;
    FlatTier host_;
    HostDmaEngine dma_;
    TierStats stats_;
    std::vector<Promo> pending_;  ///< reserved to kPendingCap up front
    std::uint32_t flushes_until_decay_ = 0;
    // Scratch buffers for promotion extraction; capacity recycled.
    KeyVec scratch_key_;
    CacheEntry scratch_entry_;
};

}  // namespace pipeleon::sim
