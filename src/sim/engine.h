// sim/engine.h — match engines. The emulator implements key matching the way
// the paper's cost model says SmartNICs do (§3.1): an exact match is one
// hash-table probe (m = 1); LPM is one hash table per distinct prefix
// length, probed longest-first; ternary is one hash table per distinct mask
// combination, probed with priority arbitration. Each engine reports its
// probe count m, so the emulated latency organically reproduces
// L_match = m * L_mat.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ir/entry.h"
#include "ir/table.h"

namespace pipeleon::sim {

/// Gathered key field values, in table-key order.
using KeyVec = std::vector<std::uint64_t>;

/// Hash functor for KeyVec (FNV-1a over the raw words).
struct KeyVecHash {
    std::size_t operator()(const KeyVec& key) const;
};

/// Result of a successful lookup: the index of the matched entry in the
/// table's entry list.
struct MatchOutcome {
    std::size_t entry_index = 0;
};

/// Abstract match engine. Engines are rebuilt from the full entry list on
/// control-plane updates (updates are control-plane-rate, lookups are
/// data-plane-rate; rebuild keeps the structures canonical).
class MatchEngine {
public:
    virtual ~MatchEngine() = default;

    /// Rebuilds internal structures from the entries.
    virtual void rebuild(const ir::Table& table,
                         const std::vector<ir::TableEntry>& entries) = 0;

    /// Looks the key up; nullopt on miss.
    virtual std::optional<MatchOutcome> lookup(const KeyVec& key) const = 0;

    /// Memory accesses (hash-table probes) one lookup costs.
    virtual int m() const = 0;
};

/// Creates the engine matching the table's effective match kind.
std::unique_ptr<MatchEngine> make_engine(const ir::Table& table);

}  // namespace pipeleon::sim
