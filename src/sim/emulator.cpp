#include "sim/emulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>

namespace pipeleon::sim {

using ir::kNoNode;
using ir::Node;
using ir::NodeId;
using ir::TableRole;

Emulator::Emulator(NicModel model, ir::Program program,
                   profile::InstrumentationConfig instrumentation)
    : model_(std::move(model)),
      program_(std::move(program)),
      instrumentation_(instrumentation) {
    program_.validate();
    mid_.packets = metrics_.counter("sim.packets");
    mid_.drops = metrics_.counter("sim.drops");
    mid_.batches = metrics_.counter("sim.batches");
    mid_.control_ops = metrics_.counter("sim.control_ops");
    mid_.epochs = metrics_.counter("sim.epochs");
    mid_.worker_packets = metrics_.counter("sim.worker_packets");
    mid_.workers_gauge = metrics_.gauge("sim.workers");
    mid_.batch_wall_ns = metrics_.histogram("sim.batch_wall_ns");
    mid_.batch_cycles = metrics_.histogram("sim.batch_cycles");
    mid_.ring_enqueued = metrics_.counter("ring.enqueued");
    mid_.ring_dequeued = metrics_.counter("ring.dequeued");
    mid_.ring_dropped = metrics_.counter("ring.dropped");
    mid_.ring_depth = metrics_.gauge("ring.depth");
    mid_.ring_drop_rate = metrics_.histogram("ring.drop_rate");
    mid_.tier_lookups = metrics_.counter("tier.lookups");
    mid_.tier_sram_hits = metrics_.counter("tier.sram_hits");
    mid_.tier_dram_hits = metrics_.counter("tier.dram_hits");
    mid_.tier_host_hits = metrics_.counter("tier.host_hits");
    mid_.tier_misses = metrics_.counter("tier.misses");
    mid_.tier_promotions = metrics_.counter("tier.promotions");
    mid_.tier_demotions = metrics_.counter("tier.demotions");
    mid_.tier_drops = metrics_.counter("tier.drops");
    mid_.tier_dma_batches = metrics_.counter("tier.dma_batches");
    mid_.tier_dma_fetches = metrics_.counter("tier.dma_fetches");
    mid_.tier_cycles = metrics_.gauge("tier.cycles");
    metrics_.set_shard_count(static_cast<std::size_t>(workers_));
    metrics_.set_gauge(mid_.workers_gauge, static_cast<double>(workers_));
    compile();
    begin_window_unlocked();
}

void Emulator::compile() {
    const std::size_t n = program_.node_count();
    compiled_.assign(n, {});
    tables_.clear();
    tables_.resize(n);

    auto compile_action = [this](const ir::Action& a) {
        CompiledAction ca;
        ca.drops = a.drops();
        for (const ir::Primitive& p : a.primitives) {
            CompiledPrimitive cp;
            cp.kind = p.kind;
            cp.value = p.value;
            cp.arg_index = p.arg_index;
            if (!p.dst_field.empty()) cp.dst = fields_.intern(p.dst_field);
            if (!p.src_field.empty()) cp.src = fields_.intern(p.src_field);
            ca.primitives.push_back(cp);
        }
        return ca;
    };

    for (const Node& node : program_.nodes()) {
        CompiledNode& cn = compiled_[static_cast<std::size_t>(node.id)];
        if (node.is_branch()) {
            cn.branch_field = fields_.intern(node.cond.field);
            continue;
        }
        for (const ir::MatchKey& k : node.table.keys) {
            cn.key_fields.push_back(fields_.intern(k.field));
        }
        for (const ir::Action& a : node.table.actions) {
            cn.actions.push_back(compile_action(a));
        }
        if (node.table.role != TableRole::Cache) {
            tables_[static_cast<std::size_t>(node.id)] =
                std::make_unique<TableState>(node.table);
        }
    }

    // Resolve which cache covers which deployed table.
    for (const Node& node : program_.nodes()) {
        if (!node.is_table() || node.table.role != TableRole::Cache) continue;
        for (const std::string& origin : node.table.origin_tables) {
            NodeId covered = program_.find_table(origin);
            if (covered != kNoNode) {
                compiled_[static_cast<std::size_t>(covered)].covered_by.push_back(
                    node.id);
            }
        }
    }

    // The steering tuple: the union of every table's key fields. Packets of
    // one flow agree on all of them, so the RSS hash pins the flow to one
    // worker shard.
    steer_fields_.clear();
    for (const CompiledNode& cn : compiled_) {
        steer_fields_.insert(steer_fields_.end(), cn.key_fields.begin(),
                             cn.key_fields.end());
    }
    std::sort(steer_fields_.begin(), steer_fields_.end());
    steer_fields_.erase(std::unique(steer_fields_.begin(), steer_fields_.end()),
                        steer_fields_.end());

    // Batched match pipeline (DESIGN.md §15): the group prefetch can only
    // target the program's *root* node — fields are unmutated before the
    // first node, so the key gathered up front equals the key run_packet
    // gathers when the walk arrives. A root cache table with a non-empty key
    // enables the pipeline for this program.
    front_cache_ = kNoNode;
    const NodeId root_id = program_.root();
    if (root_id != kNoNode) {
        const Node& root = program_.node(root_id);
        if (root.is_table() && root.table.role == TableRole::Cache &&
            !compiled_[static_cast<std::size_t>(root_id)].key_fields.empty()) {
            front_cache_ = root_id;
        }
    }

    // Hierarchical memory: does any deployed cache have lower tiers?
    has_tiered_ = false;
    for (const Node& node : program_.nodes()) {
        if (node.is_table() && node.table.role == TableRole::Cache &&
            node.table.cache.tiers.enabled()) {
            has_tiered_ = true;
            break;
        }
    }

    // Every shard starts cold on a (re)compile; the rebuild happens on the
    // owning workers (first touch) when the pool exists. Tier metric deltas
    // restart from the fresh stores' zeroed stats.
    cache_shards_.clear();
    tier_reported_ = TierStats{};
    populate_worker_state();
}

Emulator::CacheSet Emulator::make_cache_set() const {
    CacheSet set(program_.node_count());
    const TierCosts costs{model_.costs.l_tier_dram, model_.costs.l_tier_host,
                          model_.costs.dma_setup, model_.costs.dma_per_entry};
    for (const Node& node : program_.nodes()) {
        if (node.is_table() && node.table.role == TableRole::Cache) {
            set[static_cast<std::size_t>(node.id)] =
                std::make_unique<TieredStore>(node.table.cache, costs);
        }
    }
    return set;
}

TierStats Emulator::tier_totals_unlocked() const {
    TierStats total;
    for (const CacheSet& shard : cache_shards_) {
        for (const auto& store : shard) {
            if (!store) continue;
            const TierStats s = store->stats();
            total.lookups += s.lookups;
            total.sram_hits += s.sram_hits;
            total.dram_hits += s.dram_hits;
            total.host_hits += s.host_hits;
            total.misses += s.misses;
            total.promotions += s.promotions;
            total.demotions += s.demotions;
            total.drops += s.drops;
            total.dma_batches += s.dma_batches;
            total.dma_fetches += s.dma_fetches;
            total.tier_cycles += s.tier_cycles;
        }
    }
    return total;
}

void Emulator::flush_tier_stores_unlocked() {
    if (!has_tiered_) return;
    // Batch boundary: workers are quiesced and control_mu_ is held, so the
    // per-worker stores can complete partial DMA batches and apply queued
    // promotions without racing the hot path.
    for (CacheSet& shard : cache_shards_) {
        for (auto& store : shard) {
            if (store && store->tiered()) store->flush_batch();
        }
    }
    if constexpr (telemetry::kEnabled) {
        const TierStats t = tier_totals_unlocked();
        metrics_.add(mid_.tier_lookups, t.lookups - tier_reported_.lookups);
        metrics_.add(mid_.tier_sram_hits,
                     t.sram_hits - tier_reported_.sram_hits);
        metrics_.add(mid_.tier_dram_hits,
                     t.dram_hits - tier_reported_.dram_hits);
        metrics_.add(mid_.tier_host_hits,
                     t.host_hits - tier_reported_.host_hits);
        metrics_.add(mid_.tier_misses, t.misses - tier_reported_.misses);
        metrics_.add(mid_.tier_promotions,
                     t.promotions - tier_reported_.promotions);
        metrics_.add(mid_.tier_demotions,
                     t.demotions - tier_reported_.demotions);
        metrics_.add(mid_.tier_drops, t.drops - tier_reported_.drops);
        metrics_.add(mid_.tier_dma_batches,
                     t.dma_batches - tier_reported_.dma_batches);
        metrics_.add(mid_.tier_dma_fetches,
                     t.dma_fetches - tier_reported_.dma_fetches);
        metrics_.set_gauge(mid_.tier_cycles, t.tier_cycles);
        tier_reported_ = t;
    }
}

WorkerPoolOptions Emulator::pool_options() const {
    WorkerPoolOptions opts;
    opts.pin = pin_workers_;
    opts.topology = &topology_;
    return opts;
}

void Emulator::init_worker_state(int w) {
    // Runs on worker w itself when dispatched through the pool: the shard's
    // vectors, the cache store's slot/index arrays, and the scratch buffers
    // are then allocated and first-touched by the (pinned) owner, so the OS
    // places their pages on the worker's NUMA node.
    auto wi = static_cast<std::size_t>(w);
    if (cache_shards_[wi].empty()) cache_shards_[wi] = make_cache_set();
    worker_counters_[wi].reset_for(program_);
    scratch_[wi].key.reserve(16);
    scratch_[wi].fills.reserve(8);
    // Pre-size the SIMD gather buffer for the widest key the lane will hash
    // (first-touched here like the rest of the scratch).
    if (front_cache_ != kNoNode) {
        scratch_[wi].hasher.reserve(
            compiled_[static_cast<std::size_t>(front_cache_)].key_fields.size());
    }
    scratch_[wi].hasher.reserve(steer_fields_.size());
    // First-touch this worker's slice of the steering scatter buffer (the
    // "lane"); lanes are equal slices until the first real batch re-sizes
    // the plan.
    if (!steer_.idx.empty() && workers_ > 0) {
        const std::size_t stride = steer_.idx.size() / static_cast<std::size_t>(
                                                           workers_);
        const std::size_t begin = wi * stride;
        const std::size_t end =
            w == workers_ - 1 ? steer_.idx.size() : begin + stride;
        for (std::size_t i = begin; i < end; i += 1024) steer_.idx[i] = 0;
    }
}

void Emulator::populate_worker_state() {
    const auto n = static_cast<std::size_t>(workers_);
    // Cheap bookkeeping on the control thread; heavy allocations deferred to
    // init_worker_state on the owners. Shard 0 (the scalar path's cache) and
    // any other surviving shard keep their warm entries.
    cache_shards_.resize(n);
    worker_counters_.resize(n);
    scratch_.resize(n);
    if (steer_.idx.empty()) steer_.idx.resize(4096);  // pre-size the lanes
    steer_hasher_.reserve(steer_fields_.size());

    // Rebuild the NUMA-aware RETA (DESIGN.md §15): 128 buckets sliced into
    // contiguous equal blocks over the workers in node-major pin order, so
    // adjacent hash buckets map to workers whose shards share a socket and a
    // multi-socket host keeps per-batch merge traffic mostly node-local.
    // Single-worker mode steers trivially and skips the table.
    if (workers_ > 1) {
        constexpr std::size_t kRetaSize = 128;  // power of two (hash & mask)
        const std::vector<int> order = topology_.node_major_order(workers_);
        reta_.assign(kRetaSize, 0);
        for (std::size_t b = 0; b < kRetaSize; ++b) {
            const std::size_t w = b * static_cast<std::size_t>(workers_) /
                                  kRetaSize;
            reta_[b] = static_cast<std::uint32_t>(
                order[std::min(w, order.size() - 1)]);
        }
    } else {
        reta_.clear();
    }
    if (pool_ && workers_ > 1) {
        pool_->run([this](int w) { init_worker_state(w); });
    } else {
        for (int w = 0; w < workers_; ++w) init_worker_state(w);
    }
}

void Emulator::set_worker_count_unlocked(int workers) {
    workers = std::max(1, std::min(workers, std::max(1, model_.cores)));
    if (workers == workers_) return;
    workers_ = workers;
    // Pool first, then populate: new shards are built by the pinned workers
    // themselves (first touch), not by this control thread.
    pool_ = workers_ > 1
                ? std::make_unique<WorkerPool>(workers_, pool_options())
                : nullptr;
    populate_worker_state();
    if constexpr (telemetry::kEnabled) {
        // Fold before shrinking so no lane counts are lost.
        metrics_.merge_shards();
        metrics_.set_shard_count(static_cast<std::size_t>(workers_));
        metrics_.set_gauge(mid_.workers_gauge, static_cast<double>(workers_));
    }
}

void Emulator::set_pin_workers(bool on) {
    // A host-emulation knob, not a data-plane control op: takes the control
    // lock directly (waits for an in-flight batch) and recreates the pool so
    // the policy applies to live workers immediately.
    std::lock_guard<std::mutex> lock(control_mu_);
    if (pin_workers_ == on) return;
    pin_workers_ = on;
    if (pool_) {
        pool_ = std::make_unique<WorkerPool>(workers_, pool_options());
        populate_worker_state();
    }
}

void Emulator::set_match_pipeline(bool on) {
    // A/B measurement knob (bench/micro_match) — results are identical
    // either way. Takes the control lock directly like set_pin_workers.
    std::lock_guard<std::mutex> lock(control_mu_);
    match_pipeline_ = on;
}

int Emulator::pinned_workers() const {
    std::lock_guard<std::mutex> lock(control_mu_);
    return pool_ ? pool_->pinned_count() : 0;
}

void Emulator::set_worker_count(int workers) {
    ControlOp op;
    op.kind = ControlOp::Kind::SetWorkerCount;
    op.workers = workers;
    submit(std::move(op));
}

void Emulator::set_instrumentation(profile::InstrumentationConfig cfg) {
    ControlOp op;
    op.kind = ControlOp::Kind::SetInstrumentation;
    op.instrumentation = cfg;
    submit(std::move(op));
}

bool Emulator::insert_entry_unlocked(const std::string& table,
                                     const ir::TableEntry& entry) {
    NodeId id = program_.find_table(table);
    if (id == kNoNode || !tables_[static_cast<std::size_t>(id)]) return false;
    return tables_[static_cast<std::size_t>(id)]->insert(entry);
}

bool Emulator::insert_entry(const std::string& table, const ir::TableEntry& entry) {
    ControlOp op;
    op.kind = ControlOp::Kind::InsertEntry;
    op.table = table;
    op.entry = entry;
    return submit(std::move(op));
}

bool Emulator::delete_entry_unlocked(const std::string& table,
                                     const std::vector<ir::FieldMatch>& key) {
    NodeId id = program_.find_table(table);
    if (id == kNoNode || !tables_[static_cast<std::size_t>(id)]) return false;
    return tables_[static_cast<std::size_t>(id)]->erase(key);
}

bool Emulator::delete_entry(const std::string& table,
                            const std::vector<ir::FieldMatch>& key) {
    ControlOp op;
    op.kind = ControlOp::Kind::DeleteEntry;
    op.table = table;
    op.key = key;
    return submit(std::move(op));
}

bool Emulator::modify_entry_unlocked(const std::string& table,
                                     const ir::TableEntry& entry) {
    NodeId id = program_.find_table(table);
    if (id == kNoNode || !tables_[static_cast<std::size_t>(id)]) return false;
    return tables_[static_cast<std::size_t>(id)]->modify(entry);
}

bool Emulator::modify_entry(const std::string& table, const ir::TableEntry& entry) {
    ControlOp op;
    op.kind = ControlOp::Kind::ModifyEntry;
    op.table = table;
    op.entry = entry;
    return submit(std::move(op));
}

bool Emulator::set_entries_unlocked(const std::string& table,
                                    std::vector<ir::TableEntry> entries) {
    NodeId id = program_.find_table(table);
    if (id == kNoNode || !tables_[static_cast<std::size_t>(id)]) return false;
    tables_[static_cast<std::size_t>(id)]->set_entries(std::move(entries));
    return true;
}

bool Emulator::set_entries(const std::string& table,
                           std::vector<ir::TableEntry> entries) {
    ControlOp op;
    op.kind = ControlOp::Kind::SetEntries;
    op.table = table;
    op.entries = std::move(entries);
    return submit(std::move(op));
}

std::size_t Emulator::entry_count(const std::string& table) const {
    std::lock_guard<std::mutex> lock(control_mu_);
    NodeId id = program_.find_table(table);
    if (id == kNoNode) return 0;
    auto i = static_cast<std::size_t>(id);
    if (tables_[i]) return tables_[i]->entries().size();
    std::size_t total = 0;
    for (const CacheSet& shard : cache_shards_) {
        if (shard[i]) total += shard[i]->size();
    }
    return total;
}

const std::vector<ir::TableEntry>* Emulator::entries(
    const std::string& table) const {
    std::lock_guard<std::mutex> lock(control_mu_);
    NodeId id = program_.find_table(table);
    if (id == kNoNode || !tables_[static_cast<std::size_t>(id)]) return nullptr;
    return &tables_[static_cast<std::size_t>(id)]->entries();
}

int Emulator::invalidate_caches_unlocked(const std::string& origin_table) {
    int cleared = 0;
    for (const Node& node : program_.nodes()) {
        if (!node.is_table() || node.table.role != TableRole::Cache) continue;
        const auto& origins = node.table.origin_tables;
        if (std::find(origins.begin(), origins.end(), origin_table) !=
            origins.end()) {
            for (CacheSet& shard : cache_shards_) {
                shard[static_cast<std::size_t>(node.id)]->clear();
            }
            ++cleared;
        }
    }
    return cleared;
}

int Emulator::invalidate_caches_covering(const std::string& origin_table) {
    ControlOp op;
    op.kind = ControlOp::Kind::InvalidateCaches;
    op.table = origin_table;
    int cleared = 0;
    submit(std::move(op), &cleared);
    return cleared;
}

// --------------------------------------------------------------- op plumbing

bool Emulator::submit(ControlOp op, int* count_result,
                      ReconfigureStats* swap_result) {
    const std::uint64_t seq = queue_.push(std::move(op));
    std::unique_lock<std::mutex> lock(control_mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
        // A batch is in flight (or another control caller is applying). The
        // op stays queued for the next drain point; report the optimistic
        // default without waiting.
        ops_deferred_.fetch_add(1, std::memory_order_relaxed);
        if (count_result != nullptr) *count_result = -1;
        return true;
    }
    bool ok = true;
    drain_queue_unlocked(&seq, &ok, count_result, swap_result);
    ops_sync_.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

std::size_t Emulator::drain_queue_unlocked(const std::uint64_t* own_seq,
                                           bool* own_ok, int* own_count,
                                           ReconfigureStats* own_swap) {
#if PIPELEON_TELEMETRY
    // Span only non-empty drains: batch boundaries drain unconditionally,
    // and an empty drain is two atomic loads — tracing it would be noise.
    std::optional<telemetry::ScopedSpan> span;
    if (!queue_.empty()) span.emplace("emulator.drain_control");
#endif
    std::vector<ControlOp> ops = queue_.drain();
    for (ControlOp& op : ops) {
        int count = 0;
        ReconfigureStats swap_stats;
        bool ok = apply_op_unlocked(op, &count, &swap_stats);
        if (own_seq != nullptr && op.seq == *own_seq) {
            if (own_ok != nullptr) *own_ok = ok;
            if (own_count != nullptr) *own_count = count;
            if (own_swap != nullptr) *own_swap = swap_stats;
        }
    }
    ops_drained_.fetch_add(ops.size(), std::memory_order_relaxed);
    return ops.size();
}

bool Emulator::apply_op_unlocked(ControlOp& op, int* count_out,
                                 ReconfigureStats* swap_out) {
    switch (op.kind) {
        case ControlOp::Kind::InsertEntry:
            return insert_entry_unlocked(op.table, op.entry);
        case ControlOp::Kind::DeleteEntry:
            return delete_entry_unlocked(op.table, op.key);
        case ControlOp::Kind::ModifyEntry:
            return modify_entry_unlocked(op.table, op.entry);
        case ControlOp::Kind::SetEntries:
            return set_entries_unlocked(op.table, std::move(op.entries));
        case ControlOp::Kind::InvalidateCaches: {
            int cleared = invalidate_caches_unlocked(op.table);
            if (count_out != nullptr) *count_out = cleared;
            return true;
        }
        case ControlOp::Kind::BeginWindow:
            begin_window_unlocked();
            return true;
        case ControlOp::Kind::SetInstrumentation:
            instrumentation_ = op.instrumentation;
            return true;
        case ControlOp::Kind::SetWorkerCount:
            set_worker_count_unlocked(op.workers);
            return true;
        case ControlOp::Kind::Swap: {
            ReconfigureStats stats = apply_epoch_unlocked(std::move(*op.swap));
            if (swap_out != nullptr) *swap_out = stats;
            return true;
        }
    }
    return true;
}

std::size_t Emulator::drain_control() {
    std::lock_guard<std::mutex> lock(control_mu_);
    return drain_queue_unlocked();
}

Emulator::ControlPlaneStats Emulator::control_stats() const {
    ControlPlaneStats s;
    s.ops_submitted = queue_.total_pushed();
    s.ops_applied_sync = ops_sync_.load(std::memory_order_relaxed);
    s.ops_deferred = ops_deferred_.load(std::memory_order_relaxed);
    s.ops_drained = ops_drained_.load(std::memory_order_relaxed);
    s.queue_depth = queue_.depth();
    s.max_queue_depth = queue_.max_depth();
    s.epoch = epoch_.load(std::memory_order_acquire);
    return s;
}

std::size_t Emulator::cache_size(const std::string& table) const {
    std::lock_guard<std::mutex> lock(control_mu_);
    NodeId id = program_.find_table(table);
    if (id == kNoNode) return 0;
    auto i = static_cast<std::size_t>(id);
    std::size_t total = 0;
    for (const CacheSet& shard : cache_shards_) {
        if (shard[i]) total += shard[i]->size();
    }
    return total;
}

bool Emulator::sampled_for(std::uint64_t seq) const {
    if (!instrumentation_.enabled) return false;
    double rate = instrumentation_.sampling_rate;
    if (rate >= 1.0) return true;
    if (rate <= 0.0) return false;
    auto period = static_cast<std::uint64_t>(std::llround(1.0 / rate));
    return period == 0 || seq % period == 0;
}

bool Emulator::apply_action(const CompiledAction& action, Packet& packet,
                            const std::vector<std::uint64_t>& args, double scale,
                            double& cycles) const {
    cycles += static_cast<double>(action.primitives.size()) *
              model_.costs.l_act * scale;
    bool dropped = false;
    for (const CompiledPrimitive& p : action.primitives) {
        std::uint64_t value = p.value;
        if (p.arg_index >= 0 &&
            static_cast<std::size_t>(p.arg_index) < args.size()) {
            value = args[static_cast<std::size_t>(p.arg_index)];
        }
        switch (p.kind) {
            case ir::PrimitiveKind::SetConst: packet.set(p.dst, value); break;
            case ir::PrimitiveKind::CopyField:
                packet.set(p.dst, packet.get(p.src));
                break;
            case ir::PrimitiveKind::AddConst:
                packet.set(p.dst, packet.get(p.dst) + value);
                break;
            case ir::PrimitiveKind::SubConst:
                packet.set(p.dst, packet.get(p.dst) - value);
                break;
            case ir::PrimitiveKind::Drop:
                packet.mark_dropped();
                dropped = true;
                break;
            case ir::PrimitiveKind::Forward:
                packet.set_egress_port(value);
                break;
            case ir::PrimitiveKind::NoOp: break;
        }
    }
    return dropped;
}

std::uint64_t Emulator::flow_hash(const Packet& packet) const {
    // The shared RSS hash (sim/rss.h), so ring dispatch and batch steering
    // agree packet-for-packet on which worker owns a flow.
    return rss_hash(packet, steer_fields_.data(), steer_fields_.size());
}

int Emulator::worker_for_hash(std::uint64_t h) const {
    if (workers_ <= 1) return 0;
    if (reta_.empty()) {
        return static_cast<int>(h % static_cast<std::uint64_t>(workers_));
    }
    return static_cast<int>(
        reta_[static_cast<std::size_t>(h) & (reta_.size() - 1)]);
}

int Emulator::steer_worker_unlocked(const Packet& packet) const {
    if (workers_ <= 1) return 0;
    return worker_for_hash(flow_hash(packet));
}

int Emulator::steer_worker(const Packet& packet) const {
    std::lock_guard<std::mutex> lock(control_mu_);
    return steer_worker_unlocked(packet);
}

ProcessResult Emulator::run_packet(Packet& packet, bool sampled,
                                   CounterShard& counters, CacheSet& caches,
                                   WorkerScratch& scratch,
                                   const ProbeHint* hint) {
    ProcessResult result;

    // Reused per-worker buffers: clear() keeps capacity, so the warm hit
    // path gathers keys and walks the pipeline without touching the heap.
    std::vector<FillCtx>& fills = scratch.fills;
    fills.clear();

    static const std::vector<std::uint64_t> kNoArgs;

    NodeId cur = program_.root();
    std::size_t guard = program_.node_count() * 4 + 16;
    while (cur != kNoNode) {
        if (guard-- == 0) {
            throw std::runtime_error("Emulator::process: execution did not "
                                     "terminate (cyclic wiring?)");
        }
        const Node& n = program_.node(cur);
        const CompiledNode& cn = compiled_[static_cast<std::size_t>(cur)];
        const double scale =
            n.core == ir::CoreKind::Cpu ? model_.costs.cpu_slowdown : 1.0;
        ++result.nodes_visited;

        if (sampled) result.cycles += model_.costs.l_counter * scale;

        NodeId next = kNoNode;
        if (n.is_branch()) {
            result.cycles += model_.costs.l_branch * scale;
            bool taken = n.cond.evaluate(packet.get(cn.branch_field));
            if (sampled) {
                auto idx = static_cast<std::size_t>(cur);
                if (taken) {
                    ++counters.branch_true[idx];
                } else {
                    ++counters.branch_false[idx];
                }
            }
            next = taken ? n.true_next : n.false_next;
        } else {
            KeyVec& key = scratch.key;
            key.clear();
            for (FieldId f : cn.key_fields) key.push_back(packet.get(f));

            double l_mat = model_.costs.l_mat;
            if (n.table.tier == ir::MemTier::Fast &&
                model_.costs.l_mat_fast > 0.0) {
                l_mat = model_.costs.l_mat_fast;
            } else if (n.table.tier == ir::MemTier::Host &&
                       model_.costs.l_tier_host > 0.0) {
                // A table placed in host memory pays the PCIe crossing on
                // every probe (no DMA batching for table state: entries are
                // fetched on demand).
                l_mat = model_.costs.l_mat + model_.costs.l_tier_host;
            }
            if (n.table.role == TableRole::Cache) {
                TieredStore& store = *caches[static_cast<std::size_t>(cur)];
                result.cycles += l_mat * scale;  // the tier-0 probe
                // Batched pipeline: the group's SIMD pass already hashed this
                // key and prefetched its slot — reuse the hash instead of
                // walking the key bytes again. Bit-identical to lookup().
                const TieredStore::Result tr =
                    hint != nullptr && hint->node == cur
                        ? store.lookup_hashed(key, hint->key_hash)
                        : store.lookup(key);
                // A lower-tier hit costs extra cycles (DRAM access, or the
                // host DMA fetch) on top of the probe.
                result.cycles += tr.extra_cycles * scale;
                const CacheStore::CacheEntry* hit = tr.entry;
                if (hit != nullptr) {
                    if (sampled) {
                        ++counters.cache_hits[static_cast<std::size_t>(cur)];
                    }
                    bool dropped = false;
                    if (sampled) {
                        // Pull the replay-counter cells toward the cache
                        // before the per-step adds dereference them.
                        for (const ReplayStep& step : hit->steps) {
                            counters.replays.prefetch(ReplayCounterTable::pack(
                                cur, step.origin_node, step.action_index));
                        }
                    }
                    for (const ReplayStep& step : hit->steps) {
                        const CompiledNode& origin =
                            compiled_[static_cast<std::size_t>(step.origin_node)];
                        const Node& origin_node = program_.node(step.origin_node);
                        int a = step.action_index >= 0
                                    ? step.action_index
                                    : origin_node.table.default_action;
                        if (sampled) {
                            counters.replays.add(ReplayCounterTable::pack(
                                cur, step.origin_node, step.action_index));
                        }
                        if (a < 0) continue;  // miss with no default: no-op
                        dropped = apply_action(
                            origin.actions[static_cast<std::size_t>(a)], packet,
                            step.action_data, scale, result.cycles);
                        if (dropped) break;
                    }
                    if (dropped) break;
                    next = n.next_by_action.empty() ? kNoNode : n.next_by_action[0];
                } else {
                    if (sampled) {
                        ++counters.cache_misses[static_cast<std::size_t>(cur)];
                    }
                    // Miss path: copy the scratch key into the pending fill
                    // (the scratch buffer is reused by downstream nodes).
                    fills.push_back(FillCtx{cur, key, {}});
                    next = n.miss_next;
                }
            } else {
                TableState& state = *tables_[static_cast<std::size_t>(cur)];
                result.cycles += static_cast<double>(state.m()) * l_mat * scale;
                std::optional<MatchOutcome> outcome = state.lookup(key);
                bool is_merged_cache = n.table.role == TableRole::MergedCache;

                int executed_action;
                const std::vector<std::uint64_t>* args = &kNoArgs;
                if (outcome.has_value()) {
                    const ir::TableEntry& e = state.entries()[outcome->entry_index];
                    executed_action = e.action_index;
                    args = &e.action_data;
                    if (sampled) {
                        ++counters.action_hits[static_cast<std::size_t>(cur)]
                                              [static_cast<std::size_t>(
                                                  executed_action)];
                        if (is_merged_cache) {
                            ++counters.cache_hits[static_cast<std::size_t>(cur)];
                        }
                    }
                } else {
                    executed_action = n.table.default_action;
                    if (sampled) {
                        ++counters.misses[static_cast<std::size_t>(cur)];
                        if (is_merged_cache) {
                            ++counters.cache_misses[static_cast<std::size_t>(cur)];
                        }
                    }
                }

                // Record the outcome for any flow cache collecting a fill
                // for this table.
                if (!cn.covered_by.empty() && !fills.empty()) {
                    for (FillCtx& fill : fills) {
                        bool covers = std::find(cn.covered_by.begin(),
                                                cn.covered_by.end(),
                                                fill.cache_node) !=
                                      cn.covered_by.end();
                        if (covers) {
                            ReplayStep step;
                            step.origin_node = cur;
                            step.action_index =
                                outcome.has_value() ? executed_action : -1;
                            step.action_data = *args;
                            fill.entry.steps.push_back(std::move(step));
                        }
                    }
                }

                bool dropped = false;
                if (executed_action >= 0) {
                    dropped = apply_action(
                        cn.actions[static_cast<std::size_t>(executed_action)],
                        packet, *args, scale, result.cycles);
                }
                if (dropped) break;
                next = outcome.has_value() || n.table.default_action >= 0
                           ? n.next_for_action(executed_action)
                           : n.miss_next;
            }
        }

        if (next != kNoNode && program_.node(next).core != n.core) {
            result.cycles += model_.costs.l_migration;
            ++result.migrations;
        }
        cur = next;
    }

    // Install collected cache fills (LRU + rate limiting applied inside).
    for (auto& fill : fills) {
        caches[static_cast<std::size_t>(fill.cache_node)]->insert(
            fill.key, std::move(fill.entry), clock_seconds_);
    }

    result.dropped = packet.dropped();
    ++counters.packets_total;
    if (result.dropped) ++counters.packets_dropped;
    counters.latency.add(result.cycles);
    if constexpr (telemetry::kEnabled) {
        counters.latency_hist.record(result.cycles);
    }
    return result;
}

ProcessResult Emulator::process_unlocked(Packet& packet) {
    const bool sampled = sampled_for(packet_seq_);
    ++packet_seq_;
    if constexpr (telemetry::kEnabled) {
        // Scalar path runs under control_mu_ with no batch in flight, so
        // lane 0 is exclusively ours here.
        metrics_.shard_add(0, mid_.worker_packets);
    }
    return run_packet(packet, sampled, counters_, cache_shards_[0], scratch_[0]);
}

ProcessResult Emulator::process(Packet& packet) {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (!queue_.empty()) drain_queue_unlocked();  // drain point
    ProcessResult r = process_unlocked(packet);
    // The scalar path is a degenerate batch of one: still a tier boundary
    // (no-op unless some cache has lower tiers enabled).
    flush_tier_stores_unlocked();
    return r;
}

namespace {
/// Clears a flag on scope exit (in_batch_ stays true for exactly the window
/// in which control ops defer, even if a packet loop throws).
struct FlagGuard {
    std::atomic<bool>& flag;
    explicit FlagGuard(std::atomic<bool>& f) : flag(f) {
        flag.store(true, std::memory_order_release);
    }
    ~FlagGuard() { flag.store(false, std::memory_order_release); }
};
}  // namespace

void Emulator::build_steer_plan(const PacketBatch& batch) {
    // Counting-sort scatter into the reusable flat plan: count per worker,
    // prefix-sum into lane offsets, then scatter packet indices. All four
    // buffers grow amortized (assign/resize never shrink capacity), so a
    // steady-state batch loop builds the plan with zero heap allocations.
    const std::size_t n = batch.size();
    const auto w = static_cast<std::size_t>(workers_);
    steer_.counts.assign(w, 0);
    if (steer_.offsets.size() < w + 1) steer_.offsets.resize(w + 1);
    if (steer_.idx.size() < n) steer_.idx.resize(n);
    if (steer_.worker_of.size() < n) steer_.worker_of.resize(n);
    if (steer_.hash_of.size() < n) steer_.hash_of.resize(n);
    // Hash the steering tuples in SIMD groups of kHashGroup; each packet is
    // hashed exactly once per boundary, and the hash feeds both the RETA
    // worker choice here and any downstream consumer via hash_of.
    for (std::size_t i = 0; i < n; i += kHashGroup) {
        const std::size_t g = std::min(kHashGroup, n - i);
        if (g == kHashGroup) {
            steer_hasher_.rss_group(
                [&](std::size_t lane) -> const Packet& {
                    return batch[i + lane];
                },
                g, steer_fields_.data(), steer_fields_.size(),
                steer_.hash_of.data() + i);
        } else {
            for (std::size_t lane = 0; lane < g; ++lane) {
                steer_.hash_of[i + lane] = flow_hash(batch[i + lane]);
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto wk =
            static_cast<std::uint32_t>(worker_for_hash(steer_.hash_of[i]));
        steer_.worker_of[i] = wk;
        ++steer_.counts[wk];
    }
    steer_.offsets[0] = 0;
    for (std::size_t k = 0; k < w; ++k) {
        steer_.offsets[k + 1] = steer_.offsets[k] + steer_.counts[k];
    }
    // Reuse counts as scatter cursors.
    for (std::size_t k = 0; k < w; ++k) steer_.counts[k] = steer_.offsets[k];
    for (std::size_t i = 0; i < n; ++i) {
        steer_.idx[steer_.counts[steer_.worker_of[i]]++] =
            static_cast<std::uint32_t>(i);
    }
}

BatchResult Emulator::process_batch(PacketBatch& batch) {
    BatchResult out;
    process_batch(batch, out);
    return out;
}

void Emulator::process_batch(PacketBatch& batch, BatchResult& out) {
    std::lock_guard<std::mutex> lock(control_mu_);
    out.total_cycles = 0.0;
    out.dropped = 0;
    out.workers_used = 1;
    // Drain point: apply the whole control backlog before any packet runs,
    // so this batch observes either none or all of each op's effect.
    out.control_ops_applied = drain_queue_unlocked();
    FlagGuard in_batch(in_batch_);
    out.results.resize(batch.size());

    std::chrono::steady_clock::time_point wall_start;
    if constexpr (telemetry::kEnabled) {
        wall_start = std::chrono::steady_clock::now();
    }

    if (deterministic_ || workers_ <= 1 || batch.size() < 2) {
        out.workers_used = 1;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            out.results[i] = process_unlocked(batch[i]);
        }
    } else {
        out.workers_used = workers_;
        // Steer every packet up front (same flow -> same worker, and the
        // packet's sampling decision keeps its arrival-order sequence
        // number, exactly as the scalar loop would have assigned it).
        build_steer_plan(batch);
        const std::uint64_t base_seq = packet_seq_;
        ProcessResult* results = out.results.data();
        Packet* packets = batch.packets.data();
        const std::uint32_t* lane_idx = steer_.idx.data();
        const std::uint32_t* offsets = steer_.offsets.data();
        // The job reaches the pool as a function pointer + reference to this
        // lambda (WorkerPool::run is a template) — no std::function, so the
        // dispatch itself is allocation-free too.
        // Batched match pipeline (DESIGN.md §15): when the program's root is
        // a cache table, each lane hashes its keys in SIMD groups of
        // kHashGroup, prefetches all the target slots, then resolves the
        // probes with the loads in flight (run_packet reuses the hash via
        // ProbeHint). Results are bit-identical to the scalar probe order.
        const bool pipelined = match_pipeline_ && front_cache_ != kNoNode;
        const CompiledNode* front =
            pipelined ? &compiled_[static_cast<std::size_t>(front_cache_)]
                      : nullptr;
        auto job = [&](int w) {
            auto wi = static_cast<std::size_t>(w);
            CounterShard& shard = worker_counters_[wi];
            shard.reset_for(program_);
            WorkerScratch& scratch = scratch_[wi];
            const std::uint32_t begin = offsets[wi];
            const std::uint32_t end = offsets[wi + 1];
            for (std::uint32_t k = begin; k < end;) {
                const std::size_t g =
                    std::min<std::size_t>(kHashGroup, end - k);
                ProbeHint hint;
                const ProbeHint* hp = nullptr;
                std::uint64_t h8[kHashGroup];
                if (pipelined && g == kHashGroup) {
                    scratch.hasher.key_group(
                        [&](std::size_t lane) -> const Packet& {
                            return packets[lane_idx[k + lane]];
                        },
                        g, front->key_fields.data(), front->key_fields.size(),
                        h8);
                    TieredStore& store =
                        *cache_shards_[wi][static_cast<std::size_t>(
                            front_cache_)];
                    for (std::size_t lane = 0; lane < g; ++lane) {
                        store.prefetch(h8[lane]);
                    }
                    hint.node = front_cache_;
                    hp = &hint;
                }
                for (std::size_t lane = 0; lane < g; ++lane) {
                    const std::uint32_t idx = lane_idx[k + lane];
                    if (hp != nullptr) hint.key_hash = h8[lane];
                    results[idx] = run_packet(packets[idx],
                                              sampled_for(base_seq + idx),
                                              shard, cache_shards_[wi],
                                              scratch, hp);
                    if constexpr (telemetry::kEnabled) {
                        // Lane write: non-atomic, this worker owns lane wi.
                        metrics_.shard_add(wi, mid_.worker_packets);
                    }
                }
                k += static_cast<std::uint32_t>(g);
            }
        };
        pool_->run(job);
        packet_seq_ += batch.size();
        // Merge in worker order: deterministic, and counter sums are
        // order-independent anyway (only the float latency accumulation
        // depends on it).
        for (const CounterShard& shard : worker_counters_) {
            counters_.absorb(shard);
        }
    }

    for (const ProcessResult& r : out.results) {
        out.total_cycles += r.cycles;
        out.dropped += r.dropped ? 1 : 0;
    }

    // Batch boundary for the tiered stores: complete partial DMA batches,
    // apply promotions, fold tier.* deltas.
    flush_tier_stores_unlocked();

    if constexpr (telemetry::kEnabled) {
        const auto wall_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        // Batch boundary: lane writers are quiesced, control_mu_ is held —
        // fold the per-worker lanes and account the batch in the master.
        metrics_.merge_shards();
        metrics_.add(mid_.batches);
        metrics_.add(mid_.packets, static_cast<std::uint64_t>(batch.size()));
        metrics_.add(mid_.drops, static_cast<std::uint64_t>(out.dropped));
        metrics_.add(mid_.control_ops,
                     static_cast<std::uint64_t>(out.control_ops_applied));
        metrics_.record(mid_.batch_wall_ns, static_cast<double>(wall_ns));
        metrics_.record(mid_.batch_cycles, out.total_cycles);
    }
}

RssDispatcher Emulator::make_rings(const RingConfig& cfg) const {
    std::lock_guard<std::mutex> lock(control_mu_);
    // One queue per worker so each RX ring stays SPSC against its consumer;
    // deterministic/single-worker mode collapses to one in-order queue, the
    // configuration whose poll is bit-identical to a process() loop.
    const std::size_t queues =
        (deterministic_ || workers_ <= 1) ? 1
                                          : static_cast<std::size_t>(workers_);
    RssDispatcher io(queues, steer_fields_, cfg);
    io.set_steer_fields(steer_fields_,
                        epoch_.load(std::memory_order_acquire));
    // Share the NUMA-aware RETA so ring dispatch lands each flow on the same
    // worker batch steering picks (the multi-queue case; the single-queue
    // configuration steers trivially).
    if (queues > 1) io.set_steer_map(reta_);
    return io;
}

BatchResult Emulator::poll(RssDispatcher& io, double cycle_budget) {
    BatchResult out;
    poll(io, out, cycle_budget);
    return out;
}

void Emulator::poll(RssDispatcher& io, BatchResult& out, double cycle_budget) {
    std::lock_guard<std::mutex> lock(control_mu_);
    out.results.clear();
    out.total_cycles = 0.0;
    out.dropped = 0;
    out.workers_used = 1;
    out.ring_dropped = 0;
    out.ring_completed = 0;
    out.ring_backlog = 0;
    // Ring-drain boundary == batch boundary: the whole control backlog
    // applies before any descriptor is consumed.
    out.control_ops_applied = drain_queue_unlocked();
    // An epoch swap may have recompiled the program (new steering tuple);
    // re-sync the dispatcher so post-swap arrivals steer by the deployed
    // key set.
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (io.steer_epoch() != epoch) io.set_steer_fields(steer_fields_, epoch);
    FlagGuard in_batch(in_batch_);

    std::chrono::steady_clock::time_point wall_start;
    if constexpr (telemetry::kEnabled) {
        wall_start = std::chrono::steady_clock::now();
    }

    const std::size_t nq = io.queue_count();
    const double cps = model_.cycles_per_second;
    const bool parallel = !deterministic_ && workers_ > 1 &&
                          nq == static_cast<std::size_t>(workers_);

    if (!parallel) {
        // In-order service on the calling thread, queue-major. With the
        // single-queue dispatcher make_rings builds for deterministic or
        // single-worker mode this replicates the scalar process() loop
        // exactly — same seq numbering, same shard-0 counters, same float
        // accumulation order — so ring and pre-ring paths are bit-identical.
        double used = 0.0;  // one budget across all queues: one serving core
        for (std::size_t q = 0; q < nq; ++q) {
            if (cycle_budget > 0.0 && used >= cycle_budget) break;
            QueuePair& qp = io.queue(q);
            qp.rx().consume([&](RxDesc& d) {
                if constexpr (telemetry::kEnabled) {
                    metrics_.shard_add(0, mid_.worker_packets);
                }
                ProcessResult r =
                    run_packet(d.packet, sampled_for(packet_seq_), counters_,
                               cache_shards_[0], scratch_[0]);
                ++packet_seq_;
                if (d.enq_time >= 0.0) {
                    r.queue_cycles =
                        std::max(0.0, clock_seconds_ - d.enq_time) * cps;
                }
                used += r.cycles;
                qp.tx().try_push(TxCompletion{r, d.seq});
                return cycle_budget <= 0.0 || used < cycle_budget;
            });
        }
    } else {
        out.workers_used = workers_;
        const double per_budget =
            cycle_budget > 0.0 ? cycle_budget / static_cast<double>(workers_)
                               : 0.0;
        const std::uint64_t dequeued_before = io.stats().dequeued;
        // Batched match pipeline on the ring path: drain each RX queue in
        // peeked groups of kHashGroup — hash all, prefetch all slots, then
        // run each descriptor with its hash in hand — releasing the slots
        // per group. Budget semantics match consume(): the packet that
        // reaches the per-worker budget is still consumed, the rest stay
        // queued for the next poll.
        const bool pipelined = match_pipeline_ && front_cache_ != kNoNode;
        const CompiledNode* front =
            pipelined ? &compiled_[static_cast<std::size_t>(front_cache_)]
                      : nullptr;
        auto job = [&](int w) {
            auto wi = static_cast<std::size_t>(w);
            CounterShard& shard = worker_counters_[wi];
            shard.reset_for(program_);
            WorkerScratch& scratch = scratch_[wi];
            QueuePair& qp = io.queue(wi);
            double used = 0.0;
            bool budget_hit = false;
            RxDesc* group[kHashGroup];
            std::uint64_t h8[kHashGroup];
            while (!budget_hit) {
                const std::size_t g = qp.rx().peek(group, kHashGroup);
                if (g == 0) break;
                ProbeHint hint;
                const ProbeHint* hp = nullptr;
                if (pipelined && g == kHashGroup) {
                    scratch.hasher.key_group(
                        [&](std::size_t lane) -> const Packet& {
                            return group[lane]->packet;
                        },
                        g, front->key_fields.data(), front->key_fields.size(),
                        h8);
                    TieredStore& store =
                        *cache_shards_[wi][static_cast<std::size_t>(
                            front_cache_)];
                    for (std::size_t lane = 0; lane < g; ++lane) {
                        store.prefetch(h8[lane]);
                    }
                    hint.node = front_cache_;
                    hp = &hint;
                }
                std::size_t done = 0;
                for (std::size_t lane = 0; lane < g; ++lane) {
                    RxDesc& d = *group[lane];
                    // The descriptor keeps its arrival seq, so the sampling
                    // decision matches what the scalar loop would have made
                    // at that arrival.
                    if (hp != nullptr) hint.key_hash = h8[lane];
                    ProcessResult r =
                        run_packet(d.packet, sampled_for(d.seq), shard,
                                   cache_shards_[wi], scratch, hp);
                    if (d.enq_time >= 0.0) {
                        r.queue_cycles =
                            std::max(0.0, clock_seconds_ - d.enq_time) * cps;
                    }
                    used += r.cycles;
                    qp.tx().try_push(TxCompletion{r, d.seq});
                    if constexpr (telemetry::kEnabled) {
                        metrics_.shard_add(wi, mid_.worker_packets);
                    }
                    ++done;
                    if (per_budget > 0.0 && used >= per_budget) {
                        budget_hit = true;
                        break;
                    }
                }
                qp.rx().advance(done);
            }
        };
        pool_->run(job);
        packet_seq_ += io.stats().dequeued - dequeued_before;
        // Merge in worker order: deterministic given deterministic per-queue
        // consumption.
        for (const CounterShard& shard : worker_counters_) {
            counters_.absorb(shard);
        }
    }

    // Reap completions queue-major (FIFO within a queue) into the reused
    // result vector.
    for (std::size_t q = 0; q < nq; ++q) {
        io.queue(q).tx().consume([&](TxCompletion& c) {
            out.results.push_back(c.result);
            out.total_cycles += c.result.cycles;
            out.dropped += c.result.dropped ? 1 : 0;
            return true;
        });
    }
    out.ring_completed = out.results.size();

    const RingStats delta = io.take_delta();
    out.ring_dropped = delta.dropped;
    out.ring_backlog = delta.depth;

    // Ring-drain boundary is a tier boundary too.
    flush_tier_stores_unlocked();

    if constexpr (telemetry::kEnabled) {
        const auto wall_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        metrics_.merge_shards();
        metrics_.add(mid_.batches);
        metrics_.add(mid_.packets, out.ring_completed);
        metrics_.add(mid_.drops, out.dropped);
        metrics_.add(mid_.control_ops, out.control_ops_applied);
        metrics_.add(mid_.ring_enqueued, delta.enqueued);
        metrics_.add(mid_.ring_dequeued, delta.dequeued);
        metrics_.add(mid_.ring_dropped, delta.dropped);
        metrics_.set_gauge(mid_.ring_depth, static_cast<double>(delta.depth));
        const std::uint64_t offered = delta.enqueued + delta.dropped;
        if (offered > 0) {
            metrics_.record(mid_.ring_drop_rate,
                            static_cast<double>(delta.dropped) /
                                static_cast<double>(offered));
        }
        metrics_.record(mid_.batch_wall_ns, static_cast<double>(wall_ns));
        metrics_.record(mid_.batch_cycles, out.total_cycles);
    }
}

void Emulator::begin_window_unlocked() {
    counters_.reset_for(program_);
    window_start_ = clock_seconds_;
    for (auto& t : tables_) {
        if (t) t->reset_update_count();
    }
}

void Emulator::begin_window() {
    ControlOp op;
    op.kind = ControlOp::Kind::BeginWindow;
    submit(std::move(op));
}

util::RunningStats Emulator::latency_stats() const {
    std::lock_guard<std::mutex> lock(control_mu_);
    return counters_.latency;
}

telemetry::LatencyHistogram Emulator::latency_histogram() const {
    std::lock_guard<std::mutex> lock(control_mu_);
    return counters_.latency_hist;
}

telemetry::MetricsSnapshot Emulator::telemetry_snapshot() const {
    std::lock_guard<std::mutex> lock(control_mu_);
    // Invariant (ISSUE 5 satellite): merge_shards() may only run while lane
    // writers are quiesced. Holding control_mu_ guarantees that — a batch
    // owns the lock for its whole flight, so acquiring it here means no
    // worker is writing lanes. in_batch_ is re-checked defensively anyway:
    // if a future code path ever snapshots mid-batch (e.g. a monitoring
    // thread handed the lock by mistake), we merge only the master and skip
    // the lanes rather than race their writers — the snapshot then simply
    // reflects the state as of the last batch boundary, which is the
    // documented epoch-read contract.
    if (!in_batch_.load(std::memory_order_acquire)) {
        metrics_.merge_shards();
    }
    return metrics_.snapshot();
}

profile::RawCounters Emulator::read_counters() const {
    std::lock_guard<std::mutex> lock(control_mu_);
    profile::RawCounters raw;
    raw.reset_for(program_, std::max(1e-9, clock_seconds_ - window_start_));

    const double inv_sampling =
        (instrumentation_.enabled && instrumentation_.sampling_rate > 0.0 &&
         instrumentation_.sampling_rate < 1.0)
            ? 1.0 / instrumentation_.sampling_rate
            : 1.0;
    auto scale = [inv_sampling](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(v) * inv_sampling));
    };

    for (const Node& node : program_.nodes()) {
        auto i = static_cast<std::size_t>(node.id);
        if (node.is_branch()) {
            raw.branch_true[i] = scale(counters_.branch_true[i]);
            raw.branch_false[i] = scale(counters_.branch_false[i]);
            continue;
        }
        for (std::size_t a = 0; a < counters_.action_hits[i].size(); ++a) {
            raw.action_hits[i][a] = scale(counters_.action_hits[i][a]);
        }
        raw.misses[i] = scale(counters_.misses[i]);
        raw.cache_hits[i] = scale(counters_.cache_hits[i]);
        raw.cache_misses[i] = scale(counters_.cache_misses[i]);
        for (const CacheSet& shard : cache_shards_) {
            if (shard[i]) raw.inserts_dropped[i] += shard[i]->inserts_dropped();
        }

        if (tables_[i]) {
            profile::EntrySnapshot snap;
            snap.entry_count = tables_[i]->entries().size();
            snap.entry_updates = tables_[i]->update_count();
            snap.lpm_prefix_count = tables_[i]->lpm_prefix_count();
            snap.ternary_mask_count = tables_[i]->ternary_mask_count();
            raw.entries[node.table.name] = snap;
        }
    }

    // Replay counters keyed by (cache node, origin table name, action name).
    counters_.replays.for_each([&](std::uint64_t key, std::uint64_t count) {
        NodeId cache_node = ReplayCounterTable::unpack_cache(key);
        NodeId origin_node = ReplayCounterTable::unpack_origin(key);
        int action_index = ReplayCounterTable::unpack_action(key);
        const Node& origin = program_.node(origin_node);
        int a = action_index >= 0 ? action_index : origin.table.default_action;
        if (a < 0) return;
        raw.replays[{cache_node, origin.table.name,
                     origin.table.actions[static_cast<std::size_t>(a)].name}] +=
            scale(count);
    });
    return raw;
}

double Emulator::throughput_gbps(double avg_cycles, double packet_bytes) const {
    if (avg_cycles <= 0.0) return model_.line_rate_gbps;
    double pps = model_.cycles_per_second * static_cast<double>(model_.cores) /
                 avg_cycles;
    double gbps = pps * packet_bytes * 8.0 / 1e9;
    return std::min(gbps, model_.line_rate_gbps);
}

double Emulator::reconfigure_unlocked(ir::Program new_program) {
    new_program.validate();

    // Preserve entries of same-named tables with identical key structure.
    std::vector<std::pair<std::string, std::vector<ir::TableEntry>>> saved;
    for (const Node& node : program_.nodes()) {
        auto i = static_cast<std::size_t>(node.id);
        if (node.is_table() && tables_[i]) {
            saved.emplace_back(node.table.name, tables_[i]->entries());
        }
    }

    program_ = std::move(new_program);
    compile();
    begin_window_unlocked();

    for (auto& [name, entries] : saved) {
        NodeId id = program_.find_table(name);
        if (id == kNoNode || !tables_[static_cast<std::size_t>(id)]) continue;
        std::vector<ir::TableEntry> keep;
        for (const ir::TableEntry& e : entries) {
            if (e.compatible_with(program_.node(id).table)) keep.push_back(e);
        }
        tables_[static_cast<std::size_t>(id)]->set_entries(std::move(keep));
        tables_[static_cast<std::size_t>(id)]->reset_update_count();
    }

    double downtime = model_.live_reconfig ? 0.0 : model_.reload_downtime_s;
    clock_seconds_ += downtime;
    window_start_ = clock_seconds_;
    return downtime;
}

double Emulator::reconfigure(ir::Program new_program) {
    EpochSwap swap;
    swap.program = std::move(new_program);
    return apply_epoch(std::move(swap)).downtime_s;
}

Emulator::ReconfigureStats Emulator::reconfigure_incremental(
    ir::Program new_program) {
    EpochSwap swap;
    swap.program = std::move(new_program);
    swap.incremental = true;
    return apply_epoch(std::move(swap));
}

Emulator::ReconfigureStats Emulator::apply_epoch(EpochSwap swap) {
    // Validate on the caller's thread: a malformed program must throw here,
    // not inside a later batch's drain.
    swap.program.validate();
    ControlOp op;
    op.kind = ControlOp::Kind::Swap;
    op.swap = std::make_shared<EpochSwap>(std::move(swap));
    ReconfigureStats stats;
    submit(std::move(op), nullptr, &stats);
    return stats;
}

std::uint64_t Emulator::queue_epoch(EpochSwap swap) {
    swap.program.validate();
    ControlOp op;
    op.kind = ControlOp::Kind::Swap;
    op.swap = std::make_shared<EpochSwap>(std::move(swap));
    const std::uint64_t seq = queue_.push(std::move(op));
    ops_deferred_.fetch_add(1, std::memory_order_relaxed);
    return seq;
}

Emulator::ReconfigureStats Emulator::apply_epoch_unlocked(EpochSwap swap) {
    TELEMETRY_SPAN("emulator.epoch_swap");
    ReconfigureStats stats;
    if (swap.incremental) {
        stats = reconfigure_incremental_unlocked(std::move(swap.program));
    } else {
        for (const Node& node : swap.program.nodes()) {
            if (node.is_table()) ++stats.tables_total;
        }
        stats.tables_changed = stats.tables_total;  // full redeploy
        stats.downtime_s = reconfigure_unlocked(std::move(swap.program));
    }
    // Install the remapped entry sets as part of the same transition; these
    // are deployment state, not window churn, so update counts stay zero.
    for (ir::EntryLoad& load : swap.entries) {
        const std::string table = load.table;
        if (set_entries_unlocked(table, std::move(load.entries))) {
            NodeId id = program_.find_table(table);
            if (id != kNoNode && tables_[static_cast<std::size_t>(id)]) {
                tables_[static_cast<std::size_t>(id)]->reset_update_count();
            }
        }
    }
    epoch_.fetch_add(1, std::memory_order_release);
    if constexpr (telemetry::kEnabled) metrics_.add(mid_.epochs);
    return stats;
}

Emulator::ReconfigureStats Emulator::reconfigure_incremental_unlocked(
    ir::Program new_program) {
    new_program.validate();
    ReconfigureStats stats;

    // Diff between the deployed and the new program: a table counts as
    // changed when its definition differs OR its wiring does (successor
    // names), so pure reorders are costed too. Copies, not pointers: the
    // deployed program is replaced below.
    auto successor_names = [](const ir::Program& prog, const Node& node) {
        std::vector<std::string> names;
        for (NodeId s : node.successors()) {
            const Node& succ = prog.node(s);
            names.push_back(succ.is_table() ? succ.table.name : "<branch>");
        }
        std::sort(names.begin(), names.end());
        return names;
    };
    std::map<std::string, ir::Table> old_tables;
    std::map<std::string, std::vector<std::string>> old_succ;
    for (const Node& node : program_.nodes()) {
        if (!node.is_table()) continue;
        old_tables.emplace(node.table.name, node.table);
        old_succ.emplace(node.table.name, successor_names(program_, node));
    }
    std::size_t unchanged = 0;
    for (const Node& node : new_program.nodes()) {
        if (!node.is_table()) continue;
        ++stats.tables_total;
        auto it = old_tables.find(node.table.name);
        auto sit = old_succ.find(node.table.name);
        if (it != old_tables.end() && it->second == node.table &&
            sit != old_succ.end() &&
            sit->second == successor_names(new_program, node)) {
            ++unchanged;
        } else {
            ++stats.tables_changed;
        }
    }
    // Removed tables also count as changes.
    for (const auto& [name, table] : old_tables) {
        if (new_program.find_table(name) == kNoNode) ++stats.tables_changed;
    }
    (void)unchanged;

    // Save warm cache stores (one per worker shard) whose definition is
    // unchanged.
    std::map<std::string, std::vector<std::unique_ptr<TieredStore>>> saved_caches;
    for (const Node& node : program_.nodes()) {
        auto i = static_cast<std::size_t>(node.id);
        if (!node.is_table() || node.table.role != TableRole::Cache) continue;
        if (!cache_shards_[0][i]) continue;
        std::vector<std::unique_ptr<TieredStore>> stores;
        for (CacheSet& shard : cache_shards_) {
            stores.push_back(std::move(shard[i]));
        }
        saved_caches.emplace(node.table.name, std::move(stores));
    }

    double full_downtime = model_.live_reconfig ? 0.0 : model_.reload_downtime_s;
    double changed_fraction =
        stats.tables_total + stats.tables_changed == 0
            ? 0.0
            : static_cast<double>(stats.tables_changed) /
                  static_cast<double>(std::max<std::size_t>(
                      1, stats.tables_total));
    // Full reconfigure (which would drop warm caches), then splice the
    // saved stores back where definitions match.
    reconfigure_unlocked(std::move(new_program));
    clock_seconds_ -= full_downtime;  // replace with the incremental cost
    stats.downtime_s = full_downtime * std::min(1.0, changed_fraction);
    clock_seconds_ += stats.downtime_s;
    window_start_ = clock_seconds_;

    for (const Node& node : program_.nodes()) {
        auto i = static_cast<std::size_t>(node.id);
        if (!node.is_table() || node.table.role != TableRole::Cache) continue;
        auto sit = saved_caches.find(node.table.name);
        if (sit == saved_caches.end()) continue;
        auto oit = old_tables.find(node.table.name);
        if (oit != old_tables.end() && oit->second == node.table) {
            std::size_t n = std::min(sit->second.size(), cache_shards_.size());
            for (std::size_t w = 0; w < n; ++w) {
                if (sit->second[w]) cache_shards_[w][i] = std::move(sit->second[w]);
            }
            ++stats.caches_kept_warm;
        }
    }
    // Spliced-back stores carry their lifetime TierStats; re-baseline so
    // the tier.* metric deltas do not re-count them.
    tier_reported_ = tier_totals_unlocked();
    return stats;
}

}  // namespace pipeleon::sim
