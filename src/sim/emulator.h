// sim/emulator.h — the run-to-completion SmartNIC emulator. This is our
// stand-in for the paper's three targets: it executes the (optimized) IR
// directly, charging emulated cycles according to the active NicModel — m
// hash probes per key match, one L_act per action primitive, branch cost,
// counter-update cost when instrumented, CPU-core slowdown, and migration
// cost on ASIC<->CPU crossings. Flow caches learn entries on misses (LRU +
// insertion rate limiting) and replay recorded outcomes on hits. The
// emulator exposes P4-counter readings (RawCounters) and supports live
// reconfiguration (or reflash downtime, per NicModel).
//
// Data-plane entry points:
//   - process(Packet&): the scalar path, one packet on the calling thread.
//   - process_batch(PacketBatch&): the batched path. With worker_count() > 1
//     and deterministic() off, packets are steered to worker threads by an
//     RSS-style hash over the union of table key fields (same flow -> same
//     worker, always), each worker runs against its own cache shard and
//     private CounterShard (no atomics on the hot path), and shards merge
//     into the window counters in worker order at batch end. With one worker
//     or deterministic mode the batch runs through the scalar path in input
//     order and is bit-identical to calling process() per packet.
//
// Control plane (ISSUE 3): every mutation (entry ops, cache invalidation,
// window resets, worker/instrumentation changes, program swaps) travels a
// typed MPSC ControlOp queue. A caller enqueues and returns immediately —
// it NEVER blocks on a batch in flight. Pending ops are drained, in enqueue
// order, at well-defined drain points:
//
//   - batch boundaries: process_batch() (and process()) drains the backlog
//     before the batch's packets run, so a batch observes either none or
//     all of an op's effect, never a torn one;
//   - any control call that finds the data plane idle: the caller drains
//     synchronously (single-threaded use is therefore exactly as strict as
//     the old mutex fence — mutate, then read, sees the mutation);
//   - an explicit drain_control() call.
//
// Mutators return their op's real result when applied synchronously and
// optimistic defaults when deferred behind a running batch (the op applies
// at the next boundary; ops addressing tables a queued swap removes degrade
// to no-ops). Reads (read_counters, entry_count, latency_stats, ...) lock
// out the data plane (they wait for an in-flight batch, never interleave
// with one) and observe the state as of the last drain point. Program swaps
// bump epoch(); an EpochSwap op carries the new program plus its remapped
// entry set so both install in one epoch transition.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ir/program.h"
#include "profile/counter_map.h"
#include "profile/profile.h"
#include "sim/batch.h"
#include "sim/control_queue.h"
#include "sim/counter_shard.h"
#include "sim/match_batch.h"
#include "sim/nic_model.h"
#include "sim/packet.h"
#include "sim/rss.h"
#include "sim/table_state.h"
#include "sim/tiered_store.h"
#include "sim/worker_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "util/stats.h"

namespace pipeleon::sim {

class Emulator {
public:
    Emulator(NicModel model, ir::Program program,
             profile::InstrumentationConfig instrumentation = {});

    const ir::Program& program() const { return program_; }
    const NicModel& model() const { return model_; }
    FieldTable& fields() { return fields_; }
    const FieldTable& fields() const { return fields_; }
    const profile::InstrumentationConfig& instrumentation() const {
        return instrumentation_;
    }
    void set_instrumentation(profile::InstrumentationConfig cfg);

    // ------------------------------------------------------- control plane
    //
    // Every mutator below is an enqueue + opportunistic drain: the op joins
    // the MPSC queue and, when the data plane is idle, the caller drains the
    // backlog (its own op included) before returning — so the bool results
    // are exact in single-threaded use. Behind an in-flight batch the call
    // returns immediately with the optimistic default and the op applies at
    // the next batch boundary.

    /// Entry operations address *deployed* table names. (The runtime layer
    /// maps original-program API calls onto deployed tables, §2.3.)
    bool insert_entry(const std::string& table, const ir::TableEntry& entry);
    bool delete_entry(const std::string& table,
                      const std::vector<ir::FieldMatch>& key);
    bool modify_entry(const std::string& table, const ir::TableEntry& entry);
    /// Bulk-replaces entries (deployment of merged tables).
    bool set_entries(const std::string& table,
                     std::vector<ir::TableEntry> entries);
    std::size_t entry_count(const std::string& table) const;
    const std::vector<ir::TableEntry>* entries(const std::string& table) const;

    /// Number of live entries in the cache table's store (summed over all
    /// worker shards).
    std::size_t cache_size(const std::string& table) const;

    /// Invalidates (clears) every flow cache whose origin set contains the
    /// given table — "an update in any of the original tables will
    /// invalidate the entire cache" (§3.2.2) — across all worker shards.
    /// Returns the number of caches cleared (counting each node once), or
    /// -1 when the op was queued behind an in-flight batch.
    int invalidate_caches_covering(const std::string& origin_table);

    /// Applies every pending control op now (waits for an in-flight batch
    /// first). Returns the number of ops applied. Reads already observe all
    /// ops up to the last drain point; call this to force the epoch forward
    /// without pumping a batch.
    std::size_t drain_control();

    /// Ops enqueued but not yet applied.
    std::size_t control_pending() const { return queue_.depth(); }

    /// True while a batch is executing on the data plane (the window in
    /// which control ops defer instead of applying synchronously).
    bool batch_in_flight() const {
        return in_batch_.load(std::memory_order_acquire);
    }

    /// Control-plane pipeline observability (the micro_controlplane bench
    /// and the stress tests read these; all counters are monotonic).
    struct ControlPlaneStats {
        std::uint64_t ops_submitted = 0;     ///< total ops pushed
        std::uint64_t ops_applied_sync = 0;  ///< drained by their submitter
        std::uint64_t ops_deferred = 0;      ///< returned before application
        std::uint64_t ops_drained = 0;       ///< total ops applied
        std::size_t queue_depth = 0;         ///< pending right now
        std::size_t max_queue_depth = 0;     ///< backlog high-water mark
        std::uint64_t epoch = 0;             ///< program swaps applied
    };
    ControlPlaneStats control_stats() const;

    /// The deployment epoch: bumped by every applied program swap
    /// (reconfigure, reconfigure_incremental, apply_epoch, queued Swap ops).
    std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

    // ---------------------------------------------------------- data plane

    /// Runs the packet to completion; mutates the packet's fields.
    ProcessResult process(Packet& packet);

    /// Runs a whole batch; results come back in input order. See the header
    /// comment for the steering/shard-merge/determinism contract.
    BatchResult process_batch(PacketBatch& batch);

    /// Same, but reuses the caller's BatchResult buffers: `out.results` is
    /// resized in place (capacity retained across calls), so a steady-state
    /// pump loop performs zero per-batch heap allocations — the steering
    /// scatter buffer, per-worker scratch, and result vector are all
    /// reused. Aggregates in `out` are reset before the batch runs.
    void process_batch(PacketBatch& batch, BatchResult& out);

    // -------------------------------------------------- descriptor-ring I/O
    //
    // The NIC-realistic front end (ISSUE 6): producers enqueue packets into
    // per-worker RX rings through the RSS dispatcher (drop-on-overflow,
    // never blocking), and poll() services the rings — each worker drains
    // its own RX queue run-to-completion and posts completions to its TX
    // ring, which the driver thread reaps. Batch size is ring occupancy,
    // not a caller-chosen count.

    /// Builds a dispatcher wired to this emulator: one queue per worker
    /// (exactly one in deterministic or single-worker mode — the in-order
    /// configuration), steering by the same flow hash as process_batch.
    RssDispatcher make_rings(const RingConfig& cfg = {}) const;

    /// Services the rings once. A poll is a batch boundary: the control
    /// backlog drains before any descriptor is consumed (ring-drain
    /// boundary), then every RX queue is drained — in parallel when the
    /// dispatcher has one queue per worker, else in order on the calling
    /// thread (deterministic mode, single worker, or a stale queue count
    /// after a worker-count change). `cycle_budget > 0` bounds the emulated
    /// cycles spent (split evenly across workers); unconsumed descriptors
    /// stay queued for the next poll. Completions land in `out.results` in
    /// reap order (queue-major, FIFO within a queue).
    void poll(RssDispatcher& io, BatchResult& out, double cycle_budget = 0.0);
    BatchResult poll(RssDispatcher& io, double cycle_budget = 0.0);

    // ------------------------------------------------------------- workers

    /// Sets the number of data-plane workers, clamped to [1, model().cores]
    /// (a NIC cannot run more run-to-completion pipelines than it has
    /// cores). Worker cache shards beyond the first start cold; shard 0
    /// stays warm, so shrinking back to one worker keeps the scalar path's
    /// cache. Fenced like any control-plane call.
    void set_worker_count(int workers);
    int worker_count() const { return workers_; }

    /// Deterministic mode forces every batch down the sequential scalar
    /// path regardless of worker count — merged counters and latency stats
    /// are then bit-identical to a process() loop.
    void set_deterministic(bool on) { deterministic_ = on; }
    bool deterministic() const { return deterministic_; }

    /// The batched match pipeline (DESIGN.md §15): per steering lane, keys
    /// are hashed in SIMD groups of kHashGroup, the target cache slots
    /// prefetched, and probes resolved with the loads in flight. On by
    /// default; results are bit-identical with it off (test-enforced) — this
    /// knob exists for A/B measurement (bench/micro_match) and triage.
    /// Fenced like set_pin_workers (waits for an in-flight batch).
    void set_match_pipeline(bool on);
    bool match_pipeline() const { return match_pipeline_; }

    /// The worker a packet's flow steers to (stable across batches: it
    /// depends only on the packet's key-field values and the worker count).
    int steer_worker(const Packet& packet) const;

    /// Host-topology pinning policy (ISSUE 5). On by default: each worker
    /// thread pins to a CPU picked locality-first from the host topology,
    /// and its counter shard / cache shard / steering lane are first-touched
    /// from that CPU. The PIPELEON_PIN_WORKERS=0 environment variable is a
    /// process-wide override; this setter is the per-emulator one. Takes
    /// the control lock directly (it recreates the worker pool), so unlike
    /// the queued mutators it waits for an in-flight batch.
    void set_pin_workers(bool on);
    bool pin_workers() const { return pin_workers_; }

    /// The host topology this emulator pins against (detected once at
    /// construction; synthetic single-node fallback off-Linux).
    const util::Topology& topology() const { return topology_; }

    /// Workers whose affinity call succeeded (0 with no pool or pinning
    /// off). Settles once the pool has run its warm pass.
    int pinned_workers() const;

    // -------------------------------------------------------- virtual time

    double now_seconds() const { return clock_seconds_; }
    void set_time(double seconds) { clock_seconds_ = seconds; }
    void advance_time(double dt) { clock_seconds_ += dt; }

    // ------------------------------------------------ measurement / window

    /// Starts a fresh measurement window: zeroes all P4 counters, latency
    /// stats, and per-table update counts.
    void begin_window();

    /// Exports the window's counters. Sampled instrumentation counters are
    /// scaled back by 1/sampling_rate so probabilities and rates read true.
    profile::RawCounters read_counters() const;

    /// Ground-truth per-packet latency over the window (cycles). Returns a
    /// snapshot taken under the control lock — safe to hold across a
    /// concurrent batch (epoch semantics: state as of the last drain point).
    util::RunningStats latency_stats() const;

    /// The same window's per-packet latency as an HDR-style histogram
    /// (percentiles within ~3% relative error) — empty when the build has
    /// PIPELEON_TELEMETRY OFF. Copy taken under the control lock, same
    /// epoch semantics as latency_stats().
    telemetry::LatencyHistogram latency_histogram() const;

    // ------------------------------------------------------------ telemetry

    /// Lifetime metrics registry (sim.* names: packets/drops/batches/
    /// control_ops/epochs counters, workers gauge, batch_wall_ns and
    /// batch_cycles histograms). Register extra app metrics freely; lane
    /// writes are reserved for the emulator's workers.
    telemetry::MetricsRegistry& metrics() { return metrics_; }

    /// Locks out the data plane, folds pending per-worker lanes into the
    /// master, and returns a consistent snapshot.
    telemetry::MetricsSnapshot telemetry_snapshot() const;

    /// Ground-truth totals (not subject to sampling).
    std::uint64_t packets_processed() const { return counters_.packets_total; }
    std::uint64_t packets_dropped() const { return counters_.packets_dropped; }

    /// Converts an average packet latency into aggregate Gbps given the
    /// model's clock, core count, and line rate.
    double throughput_gbps(double avg_cycles, double packet_bytes = 512.0) const;

    // ----------------------------------------------------- reconfiguration

    /// Deploys a new program. Entries of same-named tables with identical
    /// keys survive; caches start cold; merged tables start empty (the
    /// runtime deployer installs their cross-product entries). Counters are
    /// re-sized and zeroed (read them first). Returns the service downtime
    /// in seconds (0 on live-reconfigurable targets).
    double reconfigure(ir::Program new_program);

    /// Result of an incremental deployment.
    struct ReconfigureStats {
        std::size_t tables_total = 0;
        std::size_t tables_changed = 0;  ///< added, removed, or redefined
        std::size_t caches_kept_warm = 0;
        double downtime_s = 0.0;
    };

    /// Incremental deployment (§6 "compile and deploy updates
    /// incrementally", after [48, 63, 64]): like reconfigure(), but flow
    /// caches whose definition (name, keys, origin set, config) is unchanged
    /// keep their learned entries, and on reflash targets the downtime
    /// scales with the fraction of tables that actually changed.
    ReconfigureStats reconfigure_incremental(ir::Program new_program);

    /// Installs a program *and* its remapped entry sets in one epoch
    /// transition — the data plane never observes the new layout with stale
    /// or missing entries. Drains synchronously when the data plane is idle;
    /// otherwise the swap applies at the next batch boundary and the
    /// returned stats carry only downtime_s = 0 (live path).
    ReconfigureStats apply_epoch(EpochSwap swap);

    /// Fire-and-forget apply_epoch: always just enqueues (even when idle).
    /// Returns the op's queue sequence number.
    std::uint64_t queue_epoch(EpochSwap swap);

private:
    struct CompiledPrimitive {
        ir::PrimitiveKind kind;
        FieldId dst = kNoField;
        FieldId src = kNoField;
        std::uint64_t value = 0;
        int arg_index = -1;
    };
    struct CompiledAction {
        std::vector<CompiledPrimitive> primitives;
        bool drops = false;
    };
    struct CompiledNode {
        std::vector<FieldId> key_fields;
        std::vector<CompiledAction> actions;
        FieldId branch_field = kNoField;
        /// Cache nodes whose origin set includes this table.
        std::vector<ir::NodeId> covered_by;
    };

    /// One worker's set of per-node cache stores (index = node id). Each
    /// store is the hierarchical SRAM -> DRAM -> host TieredStore; cache
    /// tables without a tier config run it in single-tier mode, which is
    /// bit-identical to the bare flat-LRU CacheStore.
    using CacheSet = std::vector<std::unique_ptr<TieredStore>>;

    /// A pending cache fill collected while a packet walks the pipeline:
    /// the missed cache node, the missed key, and the replay steps recorded
    /// from the covered tables downstream.
    struct FillCtx {
        ir::NodeId cache_node;
        KeyVec key;
        CacheStore::CacheEntry entry;
    };

    /// Per-worker reusable scratch (ISSUE 5): the key gather buffer and the
    /// pending-fill list run_packet used to construct per packet. Owned and
    /// first-touched by the worker, so the hot path performs no heap
    /// allocation on cache hits (misses still allocate for the fill copy).
    struct WorkerScratch {
        KeyVec key;
        std::vector<FillCtx> fills;
        /// SIMD gather+hash scratch for the lane's group-of-8 front-cache
        /// probes (batched match pipeline, DESIGN.md §15).
        MatchBatcher hasher;
    };

    /// The reusable counting-sort steering plan (ISSUE 5). One flat scatter
    /// buffer replaces the per-batch std::vector<std::vector<uint32_t>>:
    /// worker w's lane is idx[offsets[w] .. offsets[w+1]). All four buffers
    /// grow amortized and are reused across batches.
    struct SteerPlan {
        std::vector<std::uint32_t> counts;     ///< per worker; reused as cursors
        std::vector<std::uint32_t> offsets;    ///< workers_ + 1 prefix sums
        std::vector<std::uint32_t> idx;        ///< packet indices, lane-grouped
        std::vector<std::uint32_t> worker_of;  ///< per packet steering result
        std::vector<std::uint64_t> hash_of;    ///< per packet steering hash
    };

    /// A precomputed probe hint for run_packet (batched pipeline): when the
    /// walk reaches `node`, the front cache's lookup reuses `key_hash`
    /// (already computed by the group's SIMD pass, slot already prefetched)
    /// instead of hashing the gathered key again. Valid only for the
    /// program's root cache node — fields are unmutated before the first
    /// node, so the gathered key is identical.
    struct ProbeHint {
        ir::NodeId node = ir::kNoNode;
        std::uint64_t key_hash = 0;
    };

    void compile();
    CacheSet make_cache_set() const;
    /// Batch boundary for the tiered stores (no-op unless some cache table
    /// has lower tiers enabled): flushes partial DMA batches, applies
    /// pending promotions, and folds tier.* metric deltas. Runs under
    /// control_mu_ with the workers quiesced.
    void flush_tier_stores_unlocked();
    /// Sums the monotonic TierStats over every live store.
    TierStats tier_totals_unlocked() const;
    /// Sizes per-worker state (cache shards, counter shards, scratch) to
    /// workers_. Existing cache shards (and their warm entries) are kept;
    /// new shards are constructed on their owning worker thread when the
    /// pool exists, so the backing pages are first-touched on the worker's
    /// (pinned) CPU/NUMA node.
    void populate_worker_state();
    /// Builds or resets worker `w`'s shard state; runs on the owning worker
    /// when called through the pool's warm pass.
    void init_worker_state(int w);
    WorkerPoolOptions pool_options() const;
    /// Fills steer_ for the batch (counting sort by steering hash).
    void build_steer_plan(const PacketBatch& batch);

    bool sampled_for(std::uint64_t seq) const;
    /// The scalar per-packet loop, parameterized over the counter shard,
    /// cache shard, and scratch it uses. Thread-safe for distinct shards.
    ProcessResult run_packet(Packet& packet, bool sampled, CounterShard& counters,
                             CacheSet& caches, WorkerScratch& scratch,
                             const ProbeHint* hint = nullptr);
    /// Applies an action; returns true when the packet was dropped.
    bool apply_action(const CompiledAction& action, Packet& packet,
                      const std::vector<std::uint64_t>& args, double scale,
                      double& cycles) const;
    std::uint64_t flow_hash(const Packet& packet) const;
    int steer_worker_unlocked(const Packet& packet) const;
    /// Steering hash -> worker through the NUMA-aware RETA (plain modulo
    /// when the RETA is empty: single worker, or no topology advantage).
    int worker_for_hash(std::uint64_t h) const;

    ProcessResult process_unlocked(Packet& packet);
    void begin_window_unlocked();
    double reconfigure_unlocked(ir::Program new_program);
    ReconfigureStats reconfigure_incremental_unlocked(ir::Program new_program);
    ReconfigureStats apply_epoch_unlocked(EpochSwap swap);

    bool insert_entry_unlocked(const std::string& table,
                               const ir::TableEntry& entry);
    bool delete_entry_unlocked(const std::string& table,
                               const std::vector<ir::FieldMatch>& key);
    bool modify_entry_unlocked(const std::string& table,
                               const ir::TableEntry& entry);
    bool set_entries_unlocked(const std::string& table,
                              std::vector<ir::TableEntry> entries);
    int invalidate_caches_unlocked(const std::string& origin_table);
    void set_worker_count_unlocked(int workers);

    /// Enqueues the op, then opportunistically drains: when control_mu_ is
    /// free (no batch in flight) the caller applies the whole backlog —
    /// including its own op — and returns that op's real result; when a
    /// batch holds the lock the op stays queued and the optimistic default
    /// (true / -1) comes back. Never blocks on the data plane.
    bool submit(ControlOp op, int* count_result = nullptr,
                ReconfigureStats* swap_result = nullptr);

    /// Applies every queued op in enqueue order. Caller holds control_mu_.
    /// When own_seq is set, the matching op's result lands in *own_ok /
    /// *own_count / *own_swap. Returns the number of ops applied.
    std::size_t drain_queue_unlocked(const std::uint64_t* own_seq = nullptr,
                                     bool* own_ok = nullptr,
                                     int* own_count = nullptr,
                                     ReconfigureStats* own_swap = nullptr);
    /// Applies one op. Returns false only for a failed entry op.
    bool apply_op_unlocked(ControlOp& op, int* count_out,
                           ReconfigureStats* swap_out);

    NicModel model_;
    ir::Program program_;
    profile::InstrumentationConfig instrumentation_;
    FieldTable fields_;

    std::vector<CompiledNode> compiled_;
    std::vector<std::unique_ptr<TableState>> tables_;  // per node (may be null)
    /// Per-worker cache stores: cache_shards_[worker][node]. Shard 0 is the
    /// scalar path's cache; flows are pinned to shards by the steering hash,
    /// so each shard's LRU evolves deterministically.
    std::vector<CacheSet> cache_shards_;

    /// Merged window counters (sampled when instrumentation.sampling_rate
    /// < 1). Workers accumulate into worker_counters_ and merge here.
    CounterShard counters_;
    std::vector<CounterShard> worker_counters_;

    /// Lifetime telemetry (ISSUE 4): lanes take per-worker hot-path bumps,
    /// folded into the master under control_mu_ at batch end. Mutable so
    /// const readers (telemetry_snapshot) can fold pending lanes — the
    /// registry observes, it is not emulator state.
    mutable telemetry::MetricsRegistry metrics_;
    struct MetricIds {
        telemetry::MetricId packets = 0, drops = 0, batches = 0;
        telemetry::MetricId control_ops = 0, epochs = 0;
        telemetry::MetricId worker_packets = 0;  ///< sharded lane counter
        telemetry::MetricId workers_gauge = 0;
        telemetry::MetricId batch_wall_ns = 0, batch_cycles = 0;
        /// Descriptor-ring I/O (ISSUE 6): per-poll deltas from the serviced
        /// dispatcher, plus the RX backlog gauge and the per-poll drop-rate
        /// histogram (drops / offered, recorded when packets were offered).
        telemetry::MetricId ring_enqueued = 0, ring_dequeued = 0;
        telemetry::MetricId ring_dropped = 0;
        telemetry::MetricId ring_depth = 0;
        telemetry::MetricId ring_drop_rate = 0;
        /// Hierarchical flow-state memory (DESIGN.md §14): per-tier
        /// hit/miss/promote/demote/DMA counters, folded as deltas from the
        /// stores' monotonic TierStats at batch boundaries.
        telemetry::MetricId tier_lookups = 0;
        telemetry::MetricId tier_sram_hits = 0, tier_dram_hits = 0;
        telemetry::MetricId tier_host_hits = 0, tier_misses = 0;
        telemetry::MetricId tier_promotions = 0, tier_demotions = 0;
        telemetry::MetricId tier_drops = 0;
        telemetry::MetricId tier_dma_batches = 0, tier_dma_fetches = 0;
        telemetry::MetricId tier_cycles = 0;  ///< gauge: cumulative extra cycles
    } mid_;

    /// Union of every table's key fields — the emulator's RSS flow tuple.
    std::vector<FieldId> steer_fields_;

    /// NUMA-aware RSS indirection table (DESIGN.md §15): 128 buckets of
    /// contiguous equal-size blocks in node-major worker order, rebuilt by
    /// populate_worker_state(). Empty with one worker (plain modulo).
    /// make_rings() installs a copy on the dispatcher so ring dispatch and
    /// batch steering agree packet-for-packet.
    std::vector<std::uint32_t> reta_;
    /// SIMD hashing scratch for the steer plan (control thread only).
    MatchBatcher steer_hasher_;
    /// The program's root cache node when it has one (the only node the
    /// group prefetch can target: fields are unmutated at the root), else
    /// ir::kNoNode — gates the batched probe pipeline per program.
    ir::NodeId front_cache_ = ir::kNoNode;

    /// Per-worker scratch, indexed like cache_shards_ / worker_counters_.
    std::vector<WorkerScratch> scratch_;
    /// Reusable steering plan (control thread only, under control_mu_).
    SteerPlan steer_;

    /// True when any cache table of the deployed program has lower tiers
    /// enabled — gates the per-batch tier flush so single-tier programs pay
    /// nothing.
    bool has_tiered_ = false;
    /// Last tier totals folded into the tier.* metrics (delta baseline).
    TierStats tier_reported_;

    int workers_ = 1;
    bool deterministic_ = false;
    bool match_pipeline_ = true;
    bool pin_workers_ = true;
    util::Topology topology_ = util::Topology::detect();
    std::unique_ptr<WorkerPool> pool_;

    /// Serializes control-op application against in-flight batches. Callers
    /// never wait on it to *enqueue* — only to apply (submit try-locks) or
    /// to read.
    mutable std::mutex control_mu_;

    /// Pending control ops (the "update ring").
    ControlQueue queue_;
    std::atomic<std::uint64_t> ops_sync_{0};      ///< applied by submitter
    std::atomic<std::uint64_t> ops_deferred_{0};  ///< returned before apply
    std::atomic<std::uint64_t> ops_drained_{0};   ///< total applied
    std::atomic<std::uint64_t> epoch_{0};         ///< program swaps applied
    std::atomic<bool> in_batch_{false};

    std::uint64_t packet_seq_ = 0;
    double clock_seconds_ = 0.0;
    double window_start_ = 0.0;
};

}  // namespace pipeleon::sim
