// sim/emulator.h — the run-to-completion SmartNIC emulator. This is our
// stand-in for the paper's three targets: it executes the (optimized) IR
// directly, one packet at a time, charging emulated cycles according to the
// active NicModel — m hash probes per key match, one L_act per action
// primitive, branch cost, counter-update cost when instrumented, CPU-core
// slowdown, and migration cost on ASIC<->CPU crossings. Flow caches learn
// entries on misses (LRU + insertion rate limiting) and replay recorded
// outcomes on hits. The emulator exposes P4-counter readings (RawCounters)
// and supports live reconfiguration (or reflash downtime, per NicModel).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"
#include "profile/counter_map.h"
#include "profile/profile.h"
#include "sim/nic_model.h"
#include "sim/packet.h"
#include "sim/table_state.h"
#include "util/stats.h"

namespace pipeleon::sim {

/// Outcome of processing one packet.
struct ProcessResult {
    double cycles = 0.0;
    bool dropped = false;
    int migrations = 0;
    int nodes_visited = 0;
};

class Emulator {
public:
    Emulator(NicModel model, ir::Program program,
             profile::InstrumentationConfig instrumentation = {});

    const ir::Program& program() const { return program_; }
    const NicModel& model() const { return model_; }
    FieldTable& fields() { return fields_; }
    const FieldTable& fields() const { return fields_; }
    const profile::InstrumentationConfig& instrumentation() const {
        return instrumentation_;
    }
    void set_instrumentation(profile::InstrumentationConfig cfg) {
        instrumentation_ = cfg;
    }

    // ------------------------------------------------------- control plane

    /// Entry operations address *deployed* table names. (The runtime layer
    /// maps original-program API calls onto deployed tables, §2.3.)
    bool insert_entry(const std::string& table, const ir::TableEntry& entry);
    bool delete_entry(const std::string& table,
                      const std::vector<ir::FieldMatch>& key);
    bool modify_entry(const std::string& table, const ir::TableEntry& entry);
    /// Bulk-replaces entries (deployment of merged tables).
    bool set_entries(const std::string& table,
                     std::vector<ir::TableEntry> entries);
    std::size_t entry_count(const std::string& table) const;
    const std::vector<ir::TableEntry>* entries(const std::string& table) const;

    /// Number of live entries in the cache table's store.
    std::size_t cache_size(const std::string& table) const;

    /// Invalidates (clears) every flow cache whose origin set contains the
    /// given table — "an update in any of the original tables will
    /// invalidate the entire cache" (§3.2.2). Returns the number of caches
    /// cleared.
    int invalidate_caches_covering(const std::string& origin_table);

    // ---------------------------------------------------------- data plane

    /// Runs the packet to completion; mutates the packet's fields.
    ProcessResult process(Packet& packet);

    // -------------------------------------------------------- virtual time

    double now_seconds() const { return clock_seconds_; }
    void set_time(double seconds) { clock_seconds_ = seconds; }
    void advance_time(double dt) { clock_seconds_ += dt; }

    // ------------------------------------------------ measurement / window

    /// Starts a fresh measurement window: zeroes all P4 counters, latency
    /// stats, and per-table update counts.
    void begin_window();

    /// Exports the window's counters. Sampled instrumentation counters are
    /// scaled back by 1/sampling_rate so probabilities and rates read true.
    profile::RawCounters read_counters() const;

    /// Ground-truth per-packet latency over the window (cycles).
    const util::RunningStats& latency_stats() const { return latency_; }

    /// Ground-truth totals (not subject to sampling).
    std::uint64_t packets_processed() const { return packets_total_; }
    std::uint64_t packets_dropped() const { return packets_dropped_; }

    /// Converts an average packet latency into aggregate Gbps given the
    /// model's clock, core count, and line rate.
    double throughput_gbps(double avg_cycles, double packet_bytes = 512.0) const;

    // ----------------------------------------------------- reconfiguration

    /// Deploys a new program. Entries of same-named tables with identical
    /// keys survive; caches start cold; merged tables start empty (the
    /// runtime deployer installs their cross-product entries). Counters are
    /// re-sized and zeroed (read them first). Returns the service downtime
    /// in seconds (0 on live-reconfigurable targets).
    double reconfigure(ir::Program new_program);

    /// Result of an incremental deployment.
    struct ReconfigureStats {
        std::size_t tables_total = 0;
        std::size_t tables_changed = 0;  ///< added, removed, or redefined
        std::size_t caches_kept_warm = 0;
        double downtime_s = 0.0;
    };

    /// Incremental deployment (§6 "compile and deploy updates
    /// incrementally", after [48, 63, 64]): like reconfigure(), but flow
    /// caches whose definition (name, keys, origin set, config) is unchanged
    /// keep their learned entries, and on reflash targets the downtime
    /// scales with the fraction of tables that actually changed.
    ReconfigureStats reconfigure_incremental(ir::Program new_program);

private:
    struct CompiledPrimitive {
        ir::PrimitiveKind kind;
        FieldId dst = kNoField;
        FieldId src = kNoField;
        std::uint64_t value = 0;
        int arg_index = -1;
    };
    struct CompiledAction {
        std::vector<CompiledPrimitive> primitives;
        bool drops = false;
    };
    struct CompiledNode {
        std::vector<FieldId> key_fields;
        std::vector<CompiledAction> actions;
        FieldId branch_field = kNoField;
        /// Cache nodes whose origin set includes this table.
        std::vector<ir::NodeId> covered_by;
    };

    void compile();
    bool packet_sampled();
    /// Applies an action; returns true when the packet was dropped.
    bool apply_action(const CompiledAction& action, Packet& packet,
                      const std::vector<std::uint64_t>& args, double scale,
                      double& cycles);

    NicModel model_;
    ir::Program program_;
    profile::InstrumentationConfig instrumentation_;
    FieldTable fields_;

    std::vector<CompiledNode> compiled_;
    std::vector<std::unique_ptr<TableState>> tables_;  // per node (may be null)
    std::vector<std::unique_ptr<CacheStore>> caches_;  // per node (may be null)

    // Window counters (sampled when instrumentation.sampling_rate < 1).
    std::vector<std::vector<std::uint64_t>> action_hits_;
    std::vector<std::uint64_t> misses_;
    std::vector<std::uint64_t> branch_true_, branch_false_;
    std::vector<std::uint64_t> cache_hits_, cache_misses_;
    // (cache node, origin node, origin action or -1=miss) -> count
    std::map<std::tuple<ir::NodeId, ir::NodeId, int>, std::uint64_t> replays_;

    util::RunningStats latency_;
    std::uint64_t packets_total_ = 0;
    std::uint64_t packets_dropped_ = 0;
    std::uint64_t packet_seq_ = 0;
    double clock_seconds_ = 0.0;
    double window_start_ = 0.0;
};

}  // namespace pipeleon::sim
