// sim/emulator.h — the run-to-completion SmartNIC emulator. This is our
// stand-in for the paper's three targets: it executes the (optimized) IR
// directly, charging emulated cycles according to the active NicModel — m
// hash probes per key match, one L_act per action primitive, branch cost,
// counter-update cost when instrumented, CPU-core slowdown, and migration
// cost on ASIC<->CPU crossings. Flow caches learn entries on misses (LRU +
// insertion rate limiting) and replay recorded outcomes on hits. The
// emulator exposes P4-counter readings (RawCounters) and supports live
// reconfiguration (or reflash downtime, per NicModel).
//
// Data-plane entry points:
//   - process(Packet&): the scalar path, one packet on the calling thread.
//   - process_batch(PacketBatch&): the batched path. With worker_count() > 1
//     and deterministic() off, packets are steered to worker threads by an
//     RSS-style hash over the union of table key fields (same flow -> same
//     worker, always), each worker runs against its own cache shard and
//     private CounterShard (no atomics on the hot path), and shards merge
//     into the window counters in worker order at batch end. With one worker
//     or deterministic mode the batch runs through the scalar path in input
//     order and is bit-identical to calling process() per packet.
//
// Control-plane calls (entry ops, reconfiguration, cache invalidation,
// window resets) are fenced against in-flight batches by a mutex, so engine
// rebuilds never race data-plane lookups.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ir/program.h"
#include "profile/counter_map.h"
#include "profile/profile.h"
#include "sim/batch.h"
#include "sim/counter_shard.h"
#include "sim/nic_model.h"
#include "sim/packet.h"
#include "sim/table_state.h"
#include "sim/worker_pool.h"
#include "util/stats.h"

namespace pipeleon::sim {

class Emulator {
public:
    Emulator(NicModel model, ir::Program program,
             profile::InstrumentationConfig instrumentation = {});

    const ir::Program& program() const { return program_; }
    const NicModel& model() const { return model_; }
    FieldTable& fields() { return fields_; }
    const FieldTable& fields() const { return fields_; }
    const profile::InstrumentationConfig& instrumentation() const {
        return instrumentation_;
    }
    void set_instrumentation(profile::InstrumentationConfig cfg);

    // ------------------------------------------------------- control plane

    /// Entry operations address *deployed* table names. (The runtime layer
    /// maps original-program API calls onto deployed tables, §2.3.)
    bool insert_entry(const std::string& table, const ir::TableEntry& entry);
    bool delete_entry(const std::string& table,
                      const std::vector<ir::FieldMatch>& key);
    bool modify_entry(const std::string& table, const ir::TableEntry& entry);
    /// Bulk-replaces entries (deployment of merged tables).
    bool set_entries(const std::string& table,
                     std::vector<ir::TableEntry> entries);
    std::size_t entry_count(const std::string& table) const;
    const std::vector<ir::TableEntry>* entries(const std::string& table) const;

    /// Number of live entries in the cache table's store (summed over all
    /// worker shards).
    std::size_t cache_size(const std::string& table) const;

    /// Invalidates (clears) every flow cache whose origin set contains the
    /// given table — "an update in any of the original tables will
    /// invalidate the entire cache" (§3.2.2) — across all worker shards.
    /// Returns the number of caches cleared (counting each node once).
    int invalidate_caches_covering(const std::string& origin_table);

    // ---------------------------------------------------------- data plane

    /// Runs the packet to completion; mutates the packet's fields.
    ProcessResult process(Packet& packet);

    /// Runs a whole batch; results come back in input order. See the header
    /// comment for the steering/shard-merge/determinism contract.
    BatchResult process_batch(PacketBatch& batch);

    // ------------------------------------------------------------- workers

    /// Sets the number of data-plane workers, clamped to [1, model().cores]
    /// (a NIC cannot run more run-to-completion pipelines than it has
    /// cores). Worker cache shards beyond the first start cold; shard 0
    /// stays warm, so shrinking back to one worker keeps the scalar path's
    /// cache. Fenced like any control-plane call.
    void set_worker_count(int workers);
    int worker_count() const { return workers_; }

    /// Deterministic mode forces every batch down the sequential scalar
    /// path regardless of worker count — merged counters and latency stats
    /// are then bit-identical to a process() loop.
    void set_deterministic(bool on) { deterministic_ = on; }
    bool deterministic() const { return deterministic_; }

    /// The worker a packet's flow steers to (stable across batches: it
    /// depends only on the packet's key-field values and the worker count).
    int steer_worker(const Packet& packet) const;

    // -------------------------------------------------------- virtual time

    double now_seconds() const { return clock_seconds_; }
    void set_time(double seconds) { clock_seconds_ = seconds; }
    void advance_time(double dt) { clock_seconds_ += dt; }

    // ------------------------------------------------ measurement / window

    /// Starts a fresh measurement window: zeroes all P4 counters, latency
    /// stats, and per-table update counts.
    void begin_window();

    /// Exports the window's counters. Sampled instrumentation counters are
    /// scaled back by 1/sampling_rate so probabilities and rates read true.
    profile::RawCounters read_counters() const;

    /// Ground-truth per-packet latency over the window (cycles).
    const util::RunningStats& latency_stats() const { return counters_.latency; }

    /// Ground-truth totals (not subject to sampling).
    std::uint64_t packets_processed() const { return counters_.packets_total; }
    std::uint64_t packets_dropped() const { return counters_.packets_dropped; }

    /// Converts an average packet latency into aggregate Gbps given the
    /// model's clock, core count, and line rate.
    double throughput_gbps(double avg_cycles, double packet_bytes = 512.0) const;

    // ----------------------------------------------------- reconfiguration

    /// Deploys a new program. Entries of same-named tables with identical
    /// keys survive; caches start cold; merged tables start empty (the
    /// runtime deployer installs their cross-product entries). Counters are
    /// re-sized and zeroed (read them first). Returns the service downtime
    /// in seconds (0 on live-reconfigurable targets).
    double reconfigure(ir::Program new_program);

    /// Result of an incremental deployment.
    struct ReconfigureStats {
        std::size_t tables_total = 0;
        std::size_t tables_changed = 0;  ///< added, removed, or redefined
        std::size_t caches_kept_warm = 0;
        double downtime_s = 0.0;
    };

    /// Incremental deployment (§6 "compile and deploy updates
    /// incrementally", after [48, 63, 64]): like reconfigure(), but flow
    /// caches whose definition (name, keys, origin set, config) is unchanged
    /// keep their learned entries, and on reflash targets the downtime
    /// scales with the fraction of tables that actually changed.
    ReconfigureStats reconfigure_incremental(ir::Program new_program);

private:
    struct CompiledPrimitive {
        ir::PrimitiveKind kind;
        FieldId dst = kNoField;
        FieldId src = kNoField;
        std::uint64_t value = 0;
        int arg_index = -1;
    };
    struct CompiledAction {
        std::vector<CompiledPrimitive> primitives;
        bool drops = false;
    };
    struct CompiledNode {
        std::vector<FieldId> key_fields;
        std::vector<CompiledAction> actions;
        FieldId branch_field = kNoField;
        /// Cache nodes whose origin set includes this table.
        std::vector<ir::NodeId> covered_by;
    };

    /// One worker's set of per-node cache stores (index = node id).
    using CacheSet = std::vector<std::unique_ptr<CacheStore>>;

    void compile();
    CacheSet make_cache_set() const;
    /// Sizes cache_shards_ to workers_; existing shards (and their warm
    /// entries) are kept, new shards start cold.
    void resize_cache_shards();

    bool sampled_for(std::uint64_t seq) const;
    /// The scalar per-packet loop, parameterized over the counter shard and
    /// cache shard it accounts into. Thread-safe for distinct shards.
    ProcessResult run_packet(Packet& packet, bool sampled, CounterShard& counters,
                             CacheSet& caches);
    /// Applies an action; returns true when the packet was dropped.
    bool apply_action(const CompiledAction& action, Packet& packet,
                      const std::vector<std::uint64_t>& args, double scale,
                      double& cycles) const;
    std::uint64_t flow_hash(const Packet& packet) const;
    int steer_worker_unlocked(const Packet& packet) const;

    ProcessResult process_unlocked(Packet& packet);
    void begin_window_unlocked();
    double reconfigure_unlocked(ir::Program new_program);

    NicModel model_;
    ir::Program program_;
    profile::InstrumentationConfig instrumentation_;
    FieldTable fields_;

    std::vector<CompiledNode> compiled_;
    std::vector<std::unique_ptr<TableState>> tables_;  // per node (may be null)
    /// Per-worker cache stores: cache_shards_[worker][node]. Shard 0 is the
    /// scalar path's cache; flows are pinned to shards by the steering hash,
    /// so each shard's LRU evolves deterministically.
    std::vector<CacheSet> cache_shards_;

    /// Merged window counters (sampled when instrumentation.sampling_rate
    /// < 1). Workers accumulate into worker_counters_ and merge here.
    CounterShard counters_;
    std::vector<CounterShard> worker_counters_;

    /// Union of every table's key fields — the emulator's RSS flow tuple.
    std::vector<FieldId> steer_fields_;

    int workers_ = 1;
    bool deterministic_ = false;
    std::unique_ptr<WorkerPool> pool_;

    /// Fences control-plane mutations against in-flight batches.
    mutable std::mutex control_mu_;

    std::uint64_t packet_seq_ = 0;
    double clock_seconds_ = 0.0;
    double window_start_ = 0.0;
};

}  // namespace pipeleon::sim
