#include "sim/packet.h"

#include <stdexcept>

namespace pipeleon::sim {

FieldId FieldTable::intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    FieldId id = static_cast<FieldId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
}

FieldId FieldTable::find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kNoField : it->second;
}

const std::string& FieldTable::name(FieldId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) {
        throw std::out_of_range("FieldTable::name: bad field id");
    }
    return names_[static_cast<std::size_t>(id)];
}

std::size_t HeaderLayout::byte_size() const {
    std::size_t bits = 0;
    for (const FieldSpec& f : fields) bits += static_cast<std::size_t>(f.width_bits);
    return (bits + 7) / 8;
}

std::vector<std::uint8_t> serialize(const Packet& packet, const HeaderLayout& layout,
                                    const FieldTable& fields) {
    std::vector<std::uint8_t> out;
    out.reserve(layout.byte_size());
    for (const HeaderLayout::FieldSpec& spec : layout.fields) {
        FieldId id = fields.find(spec.name);
        std::uint64_t v = id == kNoField ? 0 : packet.get(id);
        int bytes = (spec.width_bits + 7) / 8;
        for (int b = bytes - 1; b >= 0; --b) {
            out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xFF));
        }
    }
    return out;
}

std::optional<Packet> deserialize(const std::vector<std::uint8_t>& data,
                                  const HeaderLayout& layout, FieldTable& fields) {
    if (data.size() < layout.byte_size()) return std::nullopt;
    Packet packet;
    std::size_t offset = 0;
    for (const HeaderLayout::FieldSpec& spec : layout.fields) {
        int bytes = (spec.width_bits + 7) / 8;
        std::uint64_t v = 0;
        for (int b = 0; b < bytes; ++b) v = (v << 8) | data[offset++];
        packet.set(fields.intern(spec.name), v);
    }
    packet.set_wire_bytes(data.size());
    return packet;
}

}  // namespace pipeleon::sim
