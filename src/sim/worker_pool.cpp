#include "sim/worker_pool.h"

#include <algorithm>
#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pipeleon::sim {

namespace {

/// Best-effort affinity for the calling thread; false when unsupported or
/// denied (cgroup cpusets, non-Linux). The thread keeps running unpinned.
bool pin_self_to_cpu(int cpu_id) {
#if defined(__linux__)
    if (cpu_id < 0 || cpu_id >= CPU_SETSIZE) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu_id), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu_id;
    return false;
#endif
}

}  // namespace

bool WorkerPool::pin_enabled_from_env() {
    const char* v = std::getenv("PIPELEON_PIN_WORKERS");
    return v == nullptr || *v == '\0' || *v != '0';
}

WorkerPool::WorkerPool(int workers, WorkerPoolOptions options) {
    workers = std::max(1, workers);
    const bool pin = options.pin && pin_enabled_from_env();
    if (pin) {
        if (options.topology != nullptr) {
            cpu_assignment_ = options.topology->assign(workers);
        } else {
            // Detect once per pool: pools live as long as the worker count
            // is stable, so this is control-plane-rate.
            cpu_assignment_ = util::Topology::detect().assign(workers);
        }
    } else {
        cpu_assignment_.assign(static_cast<std::size_t>(workers), -1);
    }

    slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(workers));
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

WorkerPool::~WorkerPool() {
    stop_.store(true, std::memory_order_release);
    for (int i = 0; i < size(); ++i) {
        // Bump past any generation the worker could be waiting on.
        slots_[static_cast<std::size_t>(i)].seq.fetch_add(
            1, std::memory_order_release);
        slots_[static_cast<std::size_t>(i)].seq.notify_one();
    }
    for (std::thread& t : threads_) t.join();
}

int WorkerPool::cpu_of(int id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= cpu_assignment_.size()) {
        return -1;
    }
    return cpu_assignment_[static_cast<std::size_t>(id)];
}

void WorkerPool::run_raw(RawFn fn, void* ctx) {
    job_ = fn;
    job_ctx_ = ctx;
    {
        std::lock_guard<std::mutex> lock(error_mu_);
        first_error_ = nullptr;
    }
    const std::uint64_t gen = ++generation_;
    // Wake: one release-store + notify per worker — no shared mutex, no
    // broadcast herd.
    for (int i = 0; i < size(); ++i) {
        Slot& slot = slots_[static_cast<std::size_t>(i)];
        slot.seq.store(gen, std::memory_order_release);
        slot.seq.notify_one();
    }
    // Join: wait on each worker's done echo. Workers that finished already
    // cost one acquire load; stragglers park the caller on their futex.
    for (int i = 0; i < size(); ++i) {
        Slot& slot = slots_[static_cast<std::size_t>(i)];
        std::uint64_t d = slot.done.load(std::memory_order_acquire);
        while (d != gen) {
            slot.done.wait(d, std::memory_order_acquire);
            d = slot.done.load(std::memory_order_acquire);
        }
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(error_mu_);
        err = first_error_;
    }
    if (err) std::rethrow_exception(err);
}

void WorkerPool::worker_loop(int id) {
    Slot& slot = slots_[static_cast<std::size_t>(id)];
    const int cpu = cpu_of(id);
    if (cpu >= 0 && pin_self_to_cpu(cpu)) {
        pinned_.fetch_add(1, std::memory_order_release);
    }

    std::uint64_t seen = 0;
    while (true) {
        std::uint64_t s = slot.seq.load(std::memory_order_acquire);
        while (s == seen) {
            if (stop_.load(std::memory_order_acquire)) return;
            slot.seq.wait(s, std::memory_order_acquire);
            s = slot.seq.load(std::memory_order_acquire);
        }
        if (stop_.load(std::memory_order_acquire)) return;
        seen = s;
        try {
            job_(job_ctx_, id);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        slot.done.store(seen, std::memory_order_release);
        slot.done.notify_one();
    }
}

}  // namespace pipeleon::sim
