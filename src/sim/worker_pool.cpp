#include "sim/worker_pool.h"

#include <algorithm>

namespace pipeleon::sim {

WorkerPool::WorkerPool(int workers) {
    workers = std::max(1, workers);
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

WorkerPool::~WorkerPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& fn) {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    first_error_ = nullptr;
    pending_ = size();
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
}

void WorkerPool::worker_loop(int id) {
    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(int)>* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this, seen] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            job = job_;
        }
        std::exception_ptr error;
        try {
            (*job)(id);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (error && !first_error_) first_error_ = error;
            if (--pending_ == 0) done_cv_.notify_one();
        }
    }
}

}  // namespace pipeleon::sim
