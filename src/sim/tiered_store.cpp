#include "sim/tiered_store.h"

#include <algorithm>

namespace pipeleon::sim {

// ------------------------------------------------------------- FlatTier

std::size_t FlatTier::probe(const KeyVec& key, std::uint64_t h) const {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (true) {
        const IndexCell& cell = index_[i];
        if (cell.slot == kNil) return i;
        if (cell.hash == h && slots_[cell.slot].key == key) return i;
        i = (i + 1) & mask;
    }
}

void FlatTier::index_insert(std::uint64_t h, std::uint32_t slot) {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (index_[i].slot != kNil) i = (i + 1) & mask;
    index_[i].hash = h;
    index_[i].slot = slot;
}

void FlatTier::index_erase(std::size_t pos) {
    // Backward-shift deletion (see CacheStore::index_erase).
    const std::size_t mask = index_.size() - 1;
    std::size_t hole = pos;
    std::size_t i = pos;
    while (true) {
        i = (i + 1) & mask;
        if (index_[i].slot == kNil) break;
        const std::size_t home = static_cast<std::size_t>(index_[i].hash) & mask;
        if (((i - home) & mask) >= ((i - hole) & mask)) {
            index_[hole] = index_[i];
            hole = i;
        }
    }
    index_[hole].slot = kNil;
    index_[hole].hash = 0;
}

void FlatTier::index_grow() {
    std::size_t want = index_.empty() ? 16 : index_.size() * 2;
    index_.assign(want, IndexCell{});
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
        index_insert(slots_[s].hash, s);
    }
}

void FlatTier::lru_unlink(std::uint32_t s) {
    Slot& slot = slots_[s];
    if (slot.prev != kNil) {
        slots_[slot.prev].next = slot.next;
    } else {
        head_ = slot.next;
    }
    if (slot.next != kNil) {
        slots_[slot.next].prev = slot.prev;
    } else {
        tail_ = slot.prev;
    }
    slot.prev = slot.next = kNil;
}

void FlatTier::lru_push_front(std::uint32_t s) {
    Slot& slot = slots_[s];
    slot.prev = kNil;
    slot.next = head_;
    if (head_ != kNil) slots_[head_].prev = s;
    head_ = s;
    if (tail_ == kNil) tail_ = s;
}

void FlatTier::release_slot(std::uint32_t s) {
    Slot& slot = slots_[s];
    slot.key.clear();  // capacity retained for the next swap-in
    slot.entry.steps.clear();
    slot.hash = 0;
    slot.hits = 0;
    slot.live = false;
    free_.push_back(s);
    --live_;
}

void FlatTier::evict_tail() {
    const std::uint32_t victim = tail_;
    index_erase(probe(slots_[victim].key, slots_[victim].hash));
    lru_unlink(victim);
    if (evict_sink_ != nullptr) {
        evict_sink_(evict_ctx_, slots_[victim].key, slots_[victim].entry);
    }
    release_slot(victim);
}

std::uint32_t FlatTier::find(const KeyVec& key, std::uint64_t h) const {
    if (live_ == 0 || index_.empty()) return kNil;
    const std::size_t pos = probe(key, h);
    return index_[pos].slot;
}

std::uint32_t FlatTier::touch(std::uint32_t s) {
    Slot& slot = slots_[s];
    if (slot.epoch != epoch_) {
        // Lazy decay: one halving per epoch elapsed since the last touch.
        const std::uint32_t d = epoch_ - slot.epoch;
        slot.hits = d >= 32 ? 0 : (slot.hits >> d);
        slot.epoch = epoch_;
    }
    ++slot.hits;
    if (head_ != s) {
        lru_unlink(s);
        lru_push_front(s);
    }
    return slot.hits;
}

void FlatTier::insert_swap(KeyVec& key, Entry& entry) {
    const std::uint64_t h = KeyVecHash{}(key);
    if (!index_.empty()) {
        const std::size_t pos = probe(key, h);
        if (index_[pos].slot != kNil) {
            // Tiers are normally disjoint; refresh in place if not.
            const std::uint32_t s = index_[pos].slot;
            std::swap(slots_[s].entry, entry);
            if (head_ != s) {
                lru_unlink(s);
                lru_push_front(s);
            }
            return;
        }
    }
    if (capacity_ == 0) {
        // Nothing fits here: cascade straight down (or discard).
        if (evict_sink_ != nullptr) evict_sink_(evict_ctx_, key, entry);
        return;
    }
    while (live_ >= capacity_) evict_tail();
    if (index_.empty() || (live_ + 1) * 10 >= index_.size() * 7) index_grow();

    std::uint32_t s;
    if (!free_.empty()) {
        s = free_.back();
        free_.pop_back();
    } else {
        s = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{});
    }
    Slot& slot = slots_[s];
    std::swap(slot.key, key);
    std::swap(slot.entry, entry);
    slot.hash = h;
    slot.hits = 0;
    slot.epoch = epoch_;
    slot.live = true;
    lru_push_front(s);
    index_insert(h, s);
    ++live_;
}

void FlatTier::extract(std::uint32_t s, KeyVec& key, Entry& entry) {
    index_erase(probe(slots_[s].key, slots_[s].hash));
    lru_unlink(s);
    std::swap(slots_[s].key, key);
    std::swap(slots_[s].entry, entry);
    release_slot(s);
}

bool FlatTier::erase(const KeyVec& key, std::uint64_t h) {
    if (live_ == 0 || index_.empty()) return false;
    const std::size_t pos = probe(key, h);
    if (index_[pos].slot == kNil) return false;
    const std::uint32_t s = index_[pos].slot;
    index_erase(pos);
    lru_unlink(s);
    release_slot(s);
    return true;
}

void FlatTier::clear() {
    for (std::uint32_t s = head_; s != kNil;) {
        const std::uint32_t next = slots_[s].next;
        slots_[s].prev = slots_[s].next = kNil;
        slots_[s].key.clear();
        slots_[s].entry.steps.clear();
        slots_[s].hash = 0;
        slots_[s].hits = 0;
        slots_[s].live = false;
        free_.push_back(s);
        s = next;
    }
    head_ = tail_ = kNil;
    live_ = 0;
    std::fill(index_.begin(), index_.end(), IndexCell{});
}

// ---------------------------------------------------------- TieredStore

TieredStore::TieredStore(const ir::CacheConfig& config, TierCosts costs)
    : config_(config),
      costs_(costs),
      tiered_(config.tiers.enabled()),
      dram_enabled_(config.tiers.dram_entries > 0),
      host_enabled_(config.tiers.host_entries > 0),
      sram_(config),
      dram_(config.tiers.dram_entries),
      host_(config.tiers.host_entries),
      dma_(config.tiers.dma_batch,
           DmaCosts{costs.dma_setup, costs.dma_per_entry}) {
    if (tiered_) {
        // Demotion cascade: SRAM tail -> DRAM -> host -> dropped.
        sram_.set_evict_sink(&demote_from_sram, this);
        if (dram_enabled_) dram_.set_evict_sink(&demote_from_dram, this);
        if (host_enabled_) host_.set_evict_sink(&demote_from_host, this);
        pending_.reserve(kPendingCap);
    }
    // else: no sink installed, every call delegates to sram_ — bit-identical
    // to a bare CacheStore.
}

void TieredStore::demote_from_sram(void* ctx, KeyVec& key, CacheEntry& entry) {
    static_cast<TieredStore*>(ctx)->demote(0, key, entry);
}
void TieredStore::demote_from_dram(void* ctx, KeyVec& key, CacheEntry& entry) {
    static_cast<TieredStore*>(ctx)->demote(1, key, entry);
}
void TieredStore::demote_from_host(void* ctx, KeyVec& key, CacheEntry& entry) {
    static_cast<TieredStore*>(ctx)->demote(2, key, entry);
}

void TieredStore::demote(int from, KeyVec& key, CacheEntry& entry) {
    if (from < 1 && dram_enabled_) {
        ++stats_.demotions;
        dram_.insert_swap(key, entry);
        return;
    }
    if (from < 2 && host_enabled_) {
        ++stats_.demotions;
        host_.insert_swap(key, entry);
        return;
    }
    ++stats_.drops;  // fell off the last enabled tier
}

TieredStore::Result TieredStore::lookup(const KeyVec& key) {
    return lookup_hashed(key, KeyVecHash{}(key));
}

TieredStore::Result TieredStore::lookup_hashed(const KeyVec& key,
                                               std::uint64_t h) {
    ++stats_.lookups;
    if (const CacheEntry* e = sram_.lookup_hashed(key, h)) {
        ++stats_.sram_hits;
        return Result{e, 0, 0.0};
    }
    if (!tiered_) {
        ++stats_.misses;
        return Result{};
    }
    if (dram_enabled_) {
        const std::uint32_t s = dram_.find(key, h);
        if (s != FlatTier::kNil) {
            const std::uint32_t hits = dram_.touch(s);
            ++stats_.dram_hits;
            const double extra = costs_.l_tier_dram;
            stats_.tier_cycles += extra;
            maybe_queue_promotion(1, s, h, hits);
            return Result{&dram_.entry(s), 1, extra};
        }
    }
    if (host_enabled_) {
        const std::uint32_t s = host_.find(key, h);
        if (s != FlatTier::kNil) {
            const std::uint32_t hits = host_.touch(s);
            ++stats_.host_hits;
            const double extra = costs_.l_tier_host + dma_.fetch(s, h);
            stats_.tier_cycles += extra;
            maybe_queue_promotion(2, s, h, hits);
            return Result{&host_.entry(s), 2, extra};
        }
    }
    ++stats_.misses;
    return Result{};
}

bool TieredStore::insert(const KeyVec& key, CacheEntry entry,
                         double now_seconds) {
    const bool ok = sram_.insert(key, std::move(entry), now_seconds);
    if (ok && tiered_) {
        // The key now lives in tier 0; drop any stale lower-tier copy so
        // the one-tier-per-key invariant holds. (The emulator only inserts
        // after a full-hierarchy miss, so this is a no-op on that path.)
        const std::uint64_t h = KeyVecHash{}(key);
        if (!(dram_enabled_ && dram_.erase(key, h)) && host_enabled_) {
            host_.erase(key, h);
        }
    }
    return ok;
}

void TieredStore::maybe_queue_promotion(int tier, std::uint32_t slot,
                                        std::uint64_t hash,
                                        std::uint32_t hits) {
    // Queue exactly at the threshold crossing (once per entry per batch);
    // a full pending list just defers the move to a later crossing.
    const std::uint32_t threshold =
        std::max<std::uint32_t>(1, config_.tiers.promote_hits);
    if (hits != threshold) return;
    if (pending_.size() >= kPendingCap) return;
    pending_.push_back(Promo{static_cast<std::uint8_t>(tier), slot, hash});
}

void TieredStore::flush_batch() {
    if (!tiered_) return;
    dma_.flush();
    for (const Promo& p : pending_) {
        FlatTier& from = p.tier == 1 ? dram_ : host_;
        // One tier up from DRAM is SRAM; from host it is DRAM, or SRAM when
        // the DRAM tier is absent.
        const bool to_sram = p.tier == 1 || !dram_enabled_;
        if (to_sram && sram_.capacity() == 0) continue;
        // Re-verify: the slot may have been promoted, evicted, or recycled
        // for another key since the hit that queued it.
        if (!from.slot_live(p.slot) || from.slot_hash(p.slot) != p.hash) {
            continue;
        }
        from.extract(p.slot, scratch_key_, scratch_entry_);
        ++stats_.promotions;
        if (to_sram) {
            sram_.promote_swap(scratch_key_, scratch_entry_);
        } else {
            dram_.insert_swap(scratch_key_, scratch_entry_);
        }
        scratch_key_.clear();
        scratch_entry_.steps.clear();
    }
    pending_.clear();
    const std::uint32_t every = config_.tiers.decay_every;
    if (every > 0 && ++flushes_until_decay_ >= every) {
        flushes_until_decay_ = 0;
        dram_.advance_epoch();
        host_.advance_epoch();
    }
}

void TieredStore::clear() {
    sram_.clear();
    if (!tiered_) return;
    dram_.clear();
    host_.clear();
    pending_.clear();
    // Complete any in-flight fetch descriptors: they delivered data before
    // the invalidation, so their doorbell is still owed.
    dma_.flush();
}

std::size_t TieredStore::size() const {
    return sram_.size() + dram_.size() + host_.size();
}

std::size_t TieredStore::tier_size(int tier) const {
    switch (tier) {
        case 0: return sram_.size();
        case 1: return dram_.size();
        case 2: return host_.size();
        default: return 0;
    }
}

TierStats TieredStore::stats() const {
    TierStats s = stats_;
    s.dma_batches = dma_.stats().batches;
    s.dma_fetches = dma_.stats().fetches;
    return s;
}

}  // namespace pipeleon::sim
