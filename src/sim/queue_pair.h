// sim/queue_pair.h — RX/TX descriptor queue pairs (ISSUE 6). Each worker
// owns one QueuePair, mirroring a NIC hardware queue pair: the RSS
// dispatcher produces parsed-packet descriptors into the RX ring, the
// worker consumes them run-to-completion and posts a completion record to
// the TX ring, and the driver thread reaps completions at poll boundaries.
// Both rings are SPSC (dispatcher -> worker on RX, worker -> driver on TX),
// so the whole I/O path needs no locks and no atomics beyond the ring
// indices.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/batch.h"
#include "sim/descriptor_ring.h"
#include "sim/packet.h"

namespace pipeleon::sim {

/// Ring sizing for make_rings(). Capacities round up to powers of two.
struct RingConfig {
    /// RX descriptors per queue. Bounds both the burst a queue absorbs and
    /// the worst-case queueing delay a packet can accumulate (a full ring of
    /// predecessors) — small rings shed early, large rings buffer deep.
    std::size_t rx_capacity = 1024;
    /// TX completion slots per queue; 0 = match rx_capacity (a poll can
    /// complete at most a full RX ring, so matching never overflows).
    std::size_t tx_capacity = 0;
};

/// One RX descriptor: the parsed packet plus its arrival metadata. The seq
/// is the dispatcher's global arrival number (it keys the sampling decision,
/// like the scalar path's packet_seq_); enq_time is the virtual-clock
/// enqueue timestamp, or < 0 when the producer did not stamp one.
struct RxDesc {
    Packet packet;
    std::uint64_t seq = 0;
    double enq_time = -1.0;
    /// Steering hash (rss_hash over the epoch's steer fields) stamped by the
    /// dispatcher, so each packet is hashed exactly once per batch boundary
    /// — consumers reuse it instead of recomputing.
    std::uint64_t flow_hash = 0;
};

/// One TX completion: the per-packet result, tagged with the RX seq.
struct TxCompletion {
    ProcessResult result;
    std::uint64_t seq = 0;
};

/// Aggregated ring accounting (summed over queues by the dispatcher).
struct RingStats {
    std::uint64_t enqueued = 0;  ///< descriptors accepted into RX
    std::uint64_t dequeued = 0;  ///< descriptors consumed from RX
    std::uint64_t dropped = 0;   ///< RX overflow drops (never blocked)
    std::uint64_t depth = 0;     ///< RX backlog right now

    /// Everything the producer ever presented.
    std::uint64_t offered() const { return enqueued + dropped; }
};

/// An RX/TX ring pair owned by one worker queue.
class QueuePair {
public:
    explicit QueuePair(const RingConfig& cfg);

    DescriptorRing<RxDesc>& rx() { return rx_; }
    const DescriptorRing<RxDesc>& rx() const { return rx_; }
    DescriptorRing<TxCompletion>& tx() { return tx_; }
    const DescriptorRing<TxCompletion>& tx() const { return tx_; }

    /// This pair's RX accounting snapshot.
    RingStats rx_stats() const;

private:
    DescriptorRing<RxDesc> rx_;
    DescriptorRing<TxCompletion> tx_;
};

}  // namespace pipeleon::sim
