// sim/host_dma.h — the emulated host-DMA engine behind the host tier of the
// hierarchical flow-state store (DESIGN.md §14). A host-memory access from
// the NIC crosses PCIe: its dominant cost is the per-transfer doorbell +
// completion handshake (dma_setup), not the per-entry copy (dma_per_entry).
// Real drivers therefore batch fetch descriptors — the tinynf/ixgbe idiom —
// and this engine models exactly that: host-tier lookups enqueue a POD fetch
// descriptor into a DescriptorRing, the doorbell rings when `batch`
// descriptors are pending (or at an explicit batch-boundary flush), and the
// setup cost is charged once per doorbell. Steady-state host misses thus pay
// `dma_per_entry + dma_setup / batch` on average, while an unbatched access
// pattern pays the full setup every time — the asymmetry the DPU
// characterization papers measure.
//
// Accounting contract (test-enforced): the engine's running total satisfies
// `cycles == setup * batches + per_entry * fetches` at every doorbell, and
// the per-access charges returned by fetch() plus the outstanding carry sum
// to exactly that total. A flush's setup cost is carried into the next
// fetch so no cycle is ever dropped from the per-packet attribution.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/descriptor_ring.h"

namespace pipeleon::sim {

/// Cost constants for the emulated DMA engine (cost::CostParams carries the
/// per-target values; sim keeps its own mirror so the store is testable
/// without a cost model).
struct DmaCosts {
    double setup = 0.0;      ///< per-batch doorbell + completion cost
    double per_entry = 0.0;  ///< per-descriptor transfer cost
};

/// One host-memory fetch request: the host-tier slot it resolves to and the
/// key's hash. POD, so ring slots never touch the heap.
struct DmaFetch {
    std::uint32_t slot = 0;
    std::uint64_t hash = 0;
};

/// Monotonic engine accounting.
struct DmaStats {
    std::uint64_t fetches = 0;  ///< descriptors completed
    std::uint64_t batches = 0;  ///< doorbells rung (full batches + flushes)
    std::uint64_t flushes = 0;  ///< partial batches completed by flush()
    double cycles = 0.0;        ///< setup * batches + per_entry * fetches
};

class HostDmaEngine {
public:
    /// `batch` is the descriptor count per doorbell (>= 1); the ring is
    /// sized to the next power of two so pushes can never fail between
    /// doorbells.
    HostDmaEngine(std::size_t batch, DmaCosts costs);

    /// Enqueues one fetch and returns the cycles to charge the triggering
    /// access: per_entry, plus the doorbell setup when this fetch fills the
    /// batch, plus any carry left over from a previous partial flush.
    double fetch(std::uint32_t slot, std::uint64_t hash);

    /// Batch boundary: completes any partial batch. The doorbell cost is
    /// recorded now and carried into the next fetch's charge.
    void flush();

    /// Descriptors enqueued but not yet completed by a doorbell.
    std::size_t pending() const { return ring_.size(); }
    /// Flush setup cycles recorded but not yet charged to an access.
    double carry() const { return carry_; }
    const DmaStats& stats() const { return stats_; }
    std::size_t batch_size() const { return batch_; }

private:
    /// Completes everything pending; returns the setup cost (0 if empty).
    double complete(bool is_flush);

    std::size_t batch_;
    DmaCosts costs_;
    DescriptorRing<DmaFetch> ring_;
    DmaStats stats_;
    double carry_ = 0.0;
};

}  // namespace pipeleon::sim
