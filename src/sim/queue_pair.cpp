#include "sim/queue_pair.h"

namespace pipeleon::sim {

QueuePair::QueuePair(const RingConfig& cfg)
    : rx_(cfg.rx_capacity),
      tx_(cfg.tx_capacity != 0 ? cfg.tx_capacity : cfg.rx_capacity) {}

RingStats QueuePair::rx_stats() const {
    RingStats s;
    s.enqueued = rx_.enqueued();
    s.dequeued = rx_.dequeued();
    s.dropped = rx_.dropped();
    s.depth = rx_.size();
    return s;
}

}  // namespace pipeleon::sim
