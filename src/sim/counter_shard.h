// sim/counter_shard.h — per-worker window counters. Each batch worker owns a
// private CounterShard and bumps plain (non-atomic) integers on the hot
// path, the way per-core P4 counters work on real multicore NICs; shards
// merge into the emulator's master shard at batch end, in worker order, so
// the merged values are deterministic. The replay counters — previously a
// std::map<std::tuple<NodeId, NodeId, int>> paying a red-black-tree walk
// per cache hit — live in ReplayCounterTable, a flat open-addressing hash
// over packed 64-bit keys.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "telemetry/histogram.h"
#include "util/stats.h"

namespace pipeleon::sim {

/// Flat linear-probing counter table keyed by a packed
/// (cache node, origin node, action index) triple. Action -1 (cache recorded
/// a miss of the origin table) is representable.
class ReplayCounterTable {
public:
    /// Packs the triple into one word: 21 bits per node id, 22 for the
    /// action (stored +1 so -1 fits). Node ids beyond 2^21 would alias, far
    /// above any program the IR validator accepts.
    static std::uint64_t pack(ir::NodeId cache_node, ir::NodeId origin_node,
                              int action_index) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cache_node) &
                                           0x1FFFFFu)
                << 43) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin_node) &
                                           0x1FFFFFu)
                << 22) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    action_index + 1)) &
                0x3FFFFFu);
    }
    static ir::NodeId unpack_cache(std::uint64_t key) {
        return static_cast<ir::NodeId>((key >> 43) & 0x1FFFFFu);
    }
    static ir::NodeId unpack_origin(std::uint64_t key) {
        return static_cast<ir::NodeId>((key >> 22) & 0x1FFFFFu);
    }
    static int unpack_action(std::uint64_t key) {
        return static_cast<int>(key & 0x3FFFFFu) - 1;
    }

    void add(std::uint64_t key, std::uint64_t delta = 1);
    /// Hints `key`'s home cell into cache ahead of the add() a sampled cache
    /// hit is about to issue per replay step (batched match pipeline,
    /// DESIGN.md §15). Speculative and side-effect-free.
    void prefetch(std::uint64_t key) const;
    void clear();
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Calls fn(key, count) for every live counter (table order, which is
    /// deterministic for a given insertion sequence; consumers that need a
    /// canonical order sort or re-key themselves).
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Slot& s : slots_) {
            if (s.key_plus_one != 0) fn(s.key_plus_one - 1, s.count);
        }
    }

private:
    struct Slot {
        std::uint64_t key_plus_one = 0;  // 0 = empty
        std::uint64_t count = 0;
    };

    std::uint64_t& slot_for(std::uint64_t key);
    void grow();

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

/// One worker's view of the measurement window: every per-node counter the
/// emulator keeps, plus latency/packet totals, all private to the worker
/// while a batch is in flight.
struct CounterShard {
    std::vector<std::vector<std::uint64_t>> action_hits;
    std::vector<std::uint64_t> misses;
    std::vector<std::uint64_t> branch_true, branch_false;
    std::vector<std::uint64_t> cache_hits, cache_misses;
    ReplayCounterTable replays;

    util::RunningStats latency;
    /// Per-packet emulated latency (cycles) bucketed HDR-style — recorded
    /// alongside `latency` on the hot path when telemetry is compiled in,
    /// merged shard-wise like every other counter (ISSUE 4).
    telemetry::LatencyHistogram latency_hist;
    std::uint64_t packets_total = 0;
    std::uint64_t packets_dropped = 0;

    /// Zeroes everything and sizes the per-node vectors for `program`.
    void reset_for(const ir::Program& program);

    /// Adds `other` into this shard (counter sums, latency merge).
    void absorb(const CounterShard& other);
};

}  // namespace pipeleon::sim
