#include "synth/program_synth.h"

#include <algorithm>
#include <map>

#include "ir/builder.h"
#include "util/strings.h"

namespace pipeleon::synth {

using ir::MatchKind;
using ir::NodeId;
using ir::Program;
using ir::Table;
using ir::TableSpec;

ProgramSynthesizer::ProgramSynthesizer(SynthConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

Table ProgramSynthesizer::make_table(int index, bool force_exact) {
    MatchKind kind = MatchKind::Exact;
    if (!force_exact) {
        double r = rng_.uniform();
        if (r < config_.lpm_fraction) {
            kind = MatchKind::Lpm;
        } else if (r < config_.lpm_fraction + config_.ternary_fraction) {
            kind = MatchKind::Ternary;
        }
    }

    std::string field;
    if (!last_field_.empty() && rng_.chance(config_.dependency_fraction)) {
        field = last_field_;  // shared field -> potential dependency
    } else {
        field = util::format("f%d", field_counter_++);
    }
    last_field_ = field;

    TableSpec spec(util::format("t%d", index));
    spec.key(field, kind).size(config_.table_size);
    int n_actions = std::max(1, config_.actions_per_table);
    bool droppable = rng_.chance(config_.drop_table_fraction);
    for (int a = 0; a < n_actions; ++a) {
        if (droppable && a == n_actions - 1) {
            spec.drop_action(util::format("t%d_deny", index));
        } else {
            spec.noop_action(util::format("t%d_a%d", index, a),
                             config_.primitives_per_action);
        }
    }
    spec.default_to(util::format("t%d_a0", index));
    return spec.build();
}

Program ProgramSynthesizer::generate(const std::string& name) {
    field_counter_ = 0;
    last_field_.clear();
    ir::ProgramBuilder b(name);
    int table_counter = 0;
    int branch_counter = 0;

    // Builds one straight pipelet; returns {head, tail}.
    auto make_pipelet = [&](int len) -> std::pair<NodeId, NodeId> {
        NodeId head = ir::kNoNode, tail = ir::kNoNode;
        for (int i = 0; i < len; ++i) {
            NodeId id = b.add(make_table(table_counter++, false));
            if (head == ir::kNoNode) head = id;
            if (tail != ir::kNoNode) b.connect(tail, id);
            tail = id;
        }
        return {head, tail};
    };

    // Edges waiting for the next pipelet head.
    struct Pending {
        NodeId node;
        enum class Kind { Uniform, BranchTrue, BranchFalse } kind;
    };
    std::vector<Pending> pending;

    auto connect_pending = [&](NodeId head) {
        // Collect branch edges first so true/false pairs are wired together.
        std::map<NodeId, std::pair<bool, bool>> branch_edges;
        for (const Pending& p : pending) {
            switch (p.kind) {
                case Pending::Kind::Uniform: b.connect(p.node, head); break;
                case Pending::Kind::BranchTrue:
                    branch_edges[p.node].first = true;
                    break;
                case Pending::Kind::BranchFalse:
                    branch_edges[p.node].second = true;
                    break;
            }
        }
        for (const auto& [node, edges] : branch_edges) {
            b.connect_branch(node, edges.first ? head : ir::kNoNode,
                             edges.second ? head : ir::kNoNode);
        }
        pending.clear();
    };

    int remaining = std::max(1, config_.pipelets);
    bool first = true;
    while (remaining > 0) {
        int len = static_cast<int>(rng_.uniform_int(config_.min_pipelet_len,
                                                    config_.max_pipelet_len));
        auto [head, tail] = make_pipelet(std::max(1, len));
        --remaining;
        if (first) {
            b.set_root(head);
            first = false;
        }
        connect_pending(head);

        if (remaining == 0) break;  // final pipelet exits the pipeline

        ir::BranchCond cond;
        cond.field = util::format("br%d", branch_counter++);
        cond.op = ir::CmpOp::Eq;
        cond.value = 1;
        NodeId branch = b.add_branch(cond);
        b.connect(tail, branch);

        if (remaining >= 3 && rng_.chance(config_.diamond_fraction)) {
            // Diamond: two arm pipelets rejoining at the next pipelet head.
            int len_a = static_cast<int>(rng_.uniform_int(
                config_.min_pipelet_len, config_.max_pipelet_len));
            int len_b = static_cast<int>(rng_.uniform_int(
                config_.min_pipelet_len, config_.max_pipelet_len));
            auto [ha, ta] = make_pipelet(std::max(1, len_a));
            auto [hb, tb] = make_pipelet(std::max(1, len_b));
            remaining -= 2;
            b.connect_branch(branch, ha, hb);
            pending.push_back({ta, Pending::Kind::Uniform});
            pending.push_back({tb, Pending::Kind::Uniform});
        } else {
            // Plain separator branch. The false edge usually continues to
            // the next pipelet too; sometimes it exits the pipeline early so
            // downstream pipelets see non-trivial reach probabilities.
            pending.push_back({branch, Pending::Kind::BranchTrue});
            if (!rng_.chance(0.3)) {
                pending.push_back({branch, Pending::Kind::BranchFalse});
            }
        }
    }

    return b.build();
}

}  // namespace pipeleon::synth
