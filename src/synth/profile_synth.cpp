#include "synth/profile_synth.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace pipeleon::synth {

using ir::Node;
using ir::NodeId;
using ir::Program;

ProfileSynthConfig heavy_drop_config() {
    ProfileSynthConfig c;
    c.drop_mean = 0.35;  // ACL-heavy: large portions of traffic denied
    c.min_entries = 64;
    c.max_entries = 4096;
    c.min_update_rate = 0.0;
    c.max_update_rate = 20.0;
    return c;
}

ProfileSynthConfig small_static_config() {
    ProfileSynthConfig c;
    c.drop_mean = 0.02;
    c.min_entries = 2;   // tiny lookup tables (direction, metadata, VNI...)
    c.max_entries = 32;
    c.min_update_rate = 0.0;
    c.max_update_rate = 0.5;  // effectively static -> merge-friendly
    return c;
}

ProfileSynthConfig high_locality_config() {
    ProfileSynthConfig c;
    c.drop_mean = 0.05;
    c.min_entries = 256;
    c.max_entries = 8192;
    c.min_update_rate = 0.0;
    c.max_update_rate = 5.0;  // long-lived flows -> cache-friendly
    return c;
}

ProfileSynthesizer::ProfileSynthesizer(ProfileSynthConfig config,
                                       std::uint64_t seed)
    : config_(config), rng_(seed) {}

profile::RuntimeProfile ProfileSynthesizer::generate(const Program& program) {
    profile::RuntimeProfile prof;
    prof.reset_for(program, config_.window_seconds);

    // Incoming traffic per node, propagated from the root.
    std::vector<double> in(program.node_count(), 0.0);
    if (program.root() != ir::kNoNode) {
        in[static_cast<std::size_t>(program.root())] =
            static_cast<double>(config_.root_lookups);
    }

    for (NodeId id : program.topo_order()) {
        const Node& n = program.node(id);
        double traffic = in[static_cast<std::size_t>(id)];

        if (n.is_branch()) {
            double p_true = rng_.uniform(0.1, 0.9);
            auto& bs = prof.branch(id);
            bs.taken_true = static_cast<std::uint64_t>(
                std::llround(traffic * p_true));
            bs.taken_false = static_cast<std::uint64_t>(
                std::llround(traffic * (1.0 - p_true)));
            if (n.true_next != ir::kNoNode) {
                in[static_cast<std::size_t>(n.true_next)] += traffic * p_true;
            }
            if (n.false_next != ir::kNoNode) {
                in[static_cast<std::size_t>(n.false_next)] +=
                    traffic * (1.0 - p_true);
            }
            continue;
        }

        const ir::Table& t = n.table;
        const std::size_t n_actions = t.actions.size();

        // Random action split (exponential weights -> Dirichlet-ish).
        std::vector<double> p(n_actions, 0.0);
        double sum = 0.0;
        for (std::size_t a = 0; a < n_actions; ++a) {
            p[a] = rng_.exponential(1.0);
            sum += p[a];
        }
        for (double& v : p) v /= sum;

        // Steer the combined probability of dropping actions toward the
        // sampled target.
        double drop_target = std::clamp(
            rng_.uniform(0.0, 2.0 * config_.drop_mean), 0.0, 0.95);
        double drop_mass = 0.0, keep_mass = 0.0;
        for (std::size_t a = 0; a < n_actions; ++a) {
            (t.actions[a].drops() ? drop_mass : keep_mass) += p[a];
        }
        if (drop_mass > 0.0 && keep_mass > 0.0) {
            for (std::size_t a = 0; a < n_actions; ++a) {
                if (t.actions[a].drops()) {
                    p[a] *= drop_target / drop_mass;
                } else {
                    p[a] *= (1.0 - drop_target) / keep_mass;
                }
            }
        }

        auto& ts = prof.table(id);
        for (std::size_t a = 0; a < n_actions; ++a) {
            ts.action_hits[a] =
                static_cast<std::uint64_t>(std::llround(traffic * p[a]));
        }
        ts.misses = 0;  // miss traffic is folded into the default action
        ts.entry_count = static_cast<std::size_t>(rng_.uniform_int(
            static_cast<std::int64_t>(config_.min_entries),
            static_cast<std::int64_t>(config_.max_entries)));
        ts.entry_updates = static_cast<std::uint64_t>(std::llround(
            rng_.uniform(config_.min_update_rate, config_.max_update_rate) *
            config_.window_seconds));
        switch (t.effective_match_kind()) {
            case ir::MatchKind::Lpm:
                ts.lpm_prefix_count = static_cast<int>(rng_.uniform_int(2, 6));
                break;
            case ir::MatchKind::Ternary:
            case ir::MatchKind::Range:
                ts.ternary_mask_count = static_cast<int>(rng_.uniform_int(2, 8));
                break;
            case ir::MatchKind::Exact: break;
        }

        // Forward non-dropped traffic along action edges.
        for (std::size_t a = 0; a < n_actions; ++a) {
            if (t.actions[a].drops()) continue;
            NodeId next = n.next_by_action[a];
            if (next != ir::kNoNode) {
                in[static_cast<std::size_t>(next)] += traffic * p[a];
            }
        }
    }
    return prof;
}

std::vector<double> pipelet_traffic_shares(
    const Program& program, const std::vector<analysis::Pipelet>& pipelets,
    const profile::RuntimeProfile& profile) {
    std::vector<double> reach = profile.reach_probabilities(program);
    std::vector<double> shares;
    shares.reserve(pipelets.size());
    double total = 0.0;
    for (const analysis::Pipelet& p : pipelets) {
        double r = p.entry() == ir::kNoNode
                       ? 0.0
                       : reach[static_cast<std::size_t>(p.entry())];
        shares.push_back(r);
        total += r;
    }
    if (total > 0.0) {
        for (double& s : shares) s /= total;
    }
    return shares;
}

double pipelet_traffic_entropy(const Program& program,
                               const std::vector<analysis::Pipelet>& pipelets,
                               const profile::RuntimeProfile& profile) {
    return util::entropy(pipelet_traffic_shares(program, pipelets, profile));
}

}  // namespace pipeleon::synth
