// synth/program_synth.h — random P4 program generation, standing in for the
// Gauntlet-based synthesizer the paper adapts ("adapting a recent tool [50]
// that can synthesize P4 programs", §5.2.2). Programs are generated with
// controlled pipelet count (PN) and pipelet length (PL) — the two knobs the
// optimization-speed study sweeps (§5.4.2) — plus match-kind mix, action
// shape, droppability, and occasional inter-table dependencies.
#pragma once

#include <string>

#include "ir/program.h"
#include "util/rng.h"

namespace pipeleon::synth {

struct SynthConfig {
    /// Target number of pipelets (branches/diamonds are inserted between
    /// them; the realized count can differ by ±1 and is reported by the
    /// pipelet partitioner).
    int pipelets = 10;
    /// Tables per pipelet: sampled uniformly in [min_len, max_len].
    int min_pipelet_len = 2;
    int max_pipelet_len = 3;

    /// Match-kind mix over tables (remainder is exact).
    double lpm_fraction = 0.15;
    double ternary_fraction = 0.15;

    int actions_per_table = 2;
    int primitives_per_action = 2;

    /// Fraction of tables given a packet-dropping action (ACL-like).
    double drop_table_fraction = 0.3;

    /// Probability that a table reuses a neighbor's field, creating a
    /// dependency that constrains reordering/merging.
    double dependency_fraction = 0.15;

    /// Probability that a pipelet boundary is a diamond (branch with two
    /// arms rejoining) rather than a plain branch.
    double diamond_fraction = 0.3;

    std::size_t table_size = 1024;
};

class ProgramSynthesizer {
public:
    ProgramSynthesizer(SynthConfig config, std::uint64_t seed);

    /// Generates one random program.
    ir::Program generate(const std::string& name);

private:
    ir::Table make_table(int index, bool force_exact);

    SynthConfig config_;
    util::Rng rng_;
    int field_counter_ = 0;
    std::string last_field_;
};

}  // namespace pipeleon::synth
