// synth/profile_synth.h — the "runtime profile synthesizer" of §5.2.2: it
// invents plausible runtime profiles for a program so the search can be
// exercised across many workload shapes without running traffic. Three
// named presets mirror the paper's program categories (heavy packet drops,
// small static tables, high traffic locality), and random-profile generation
// plus pipelet-traffic entropy support the §5.4.3/A.3 studies (Figs 14, 18,
// 19).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/pipelet.h"
#include "ir/program.h"
#include "profile/profile.h"
#include "util/rng.h"

namespace pipeleon::synth {

struct ProfileSynthConfig {
    /// Mean drop probability assigned to dropping actions of droppable
    /// tables (drawn uniformly in [0, 2*mean], clamped to [0, 0.95]).
    double drop_mean = 0.2;
    /// Entry count range per table.
    std::size_t min_entries = 16;
    std::size_t max_entries = 4096;
    /// Entry updates per second range.
    double min_update_rate = 0.0;
    double max_update_rate = 50.0;
    /// Total lookups attributed to the root (propagated downstream).
    std::uint64_t root_lookups = 1'000'000;
    /// Window the counts are interpreted over.
    double window_seconds = 5.0;
};

/// Category presets (§5.2.2).
ProfileSynthConfig heavy_drop_config();
ProfileSynthConfig small_static_config();
ProfileSynthConfig high_locality_config();

class ProfileSynthesizer {
public:
    ProfileSynthesizer(ProfileSynthConfig config, std::uint64_t seed);

    /// Generates a random but flow-consistent profile: action splits are
    /// random, branch splits are random, and per-node lookup counts follow
    /// the graph structure from the root (so reach probabilities are
    /// self-consistent).
    profile::RuntimeProfile generate(const ir::Program& program);

private:
    ProfileSynthConfig config_;
    util::Rng rng_;
};

/// Normalized traffic share per pipelet (reach probability of each pipelet's
/// entry, normalized to sum to 1) — the distribution whose entropy §5.4.3
/// uses to characterize aggregation (Fig 18).
std::vector<double> pipelet_traffic_shares(
    const ir::Program& program, const std::vector<analysis::Pipelet>& pipelets,
    const profile::RuntimeProfile& profile);

/// Shannon entropy of the pipelet traffic distribution.
double pipelet_traffic_entropy(const ir::Program& program,
                               const std::vector<analysis::Pipelet>& pipelets,
                               const profile::RuntimeProfile& profile);

}  // namespace pipeleon::synth
