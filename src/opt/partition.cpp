#include "opt/partition.h"

#include <algorithm>

#include "opt/transform.h"
#include "util/strings.h"

namespace pipeleon::opt {

using ir::CoreKind;
using ir::kNoNode;
using ir::Node;
using ir::NodeId;
using ir::Program;

Program partition_by_support(const Program& program) {
    Program work = program;
    for (std::size_t i = 0; i < work.node_count(); ++i) {
        Node& n = work.node(static_cast<NodeId>(i));
        if (n.is_table()) {
            n.core = n.table.asic_supported ? CoreKind::Asic : CoreKind::Cpu;
        }
    }
    // Branches inherit the core of their (first) predecessor so that a
    // branch inside a CPU region does not force two extra migrations.
    auto preds = work.predecessors();
    for (NodeId id : work.topo_order()) {
        Node& n = work.node(id);
        if (!n.is_branch()) continue;
        const auto& p = preds[static_cast<std::size_t>(id)];
        if (!p.empty()) n.core = work.node(p[0]).core;
    }
    return work;
}

namespace {

ir::Table make_context_table(const std::string& name, ir::TableRole role) {
    ir::Table t;
    t.name = name;
    t.role = role;
    t.keys.push_back(ir::MatchKey{kNextTabIdField, ir::MatchKind::Exact, 16});
    ir::Action resume;
    resume.name = role == ir::TableRole::Navigation ? "resume" : "save_context";
    if (role == ir::TableRole::Migration) {
        resume.primitives.push_back(
            ir::Primitive::set_const(kNextTabIdField, 0));
    }
    t.actions.push_back(std::move(resume));
    t.default_action = 0;
    t.size = 64;
    return t;
}

}  // namespace

Program insert_migration_tables(const Program& program) {
    Program work = program;
    // For every edge u -> v crossing cores, splice in:
    //   u -> migration(u.core) -> navigation(v.core) -> v
    // One navigation table per region entry and one migration table per
    // region exit suffices; we key them by the boundary node ids.
    int counter = 0;
    std::vector<std::pair<NodeId, NodeId>> crossings;
    for (NodeId id : work.reachable()) {
        const Node& n = work.node(id);
        for (NodeId s : n.successors()) {
            if (work.node(s).core != n.core) crossings.emplace_back(id, s);
        }
    }
    for (auto [u, v] : crossings) {
        CoreKind from_core = work.node(u).core;
        CoreKind to_core = work.node(v).core;
        NodeId mig = work.add_table(make_context_table(
            util::format("migrate_%d", counter), ir::TableRole::Migration));
        NodeId nav = work.add_table(make_context_table(
            util::format("navigate_%d", counter), ir::TableRole::Navigation));
        ++counter;
        work.node(mig).core = from_core;
        work.node(nav).core = to_core;
        work.node(mig).set_uniform_next(nav);
        work.node(nav).set_uniform_next(v);
        // Point only the u->v edges at the migration table.
        Node& un = work.node(u);
        for (NodeId& t : un.next_by_action) {
            if (t == v) t = mig;
        }
        if (un.miss_next == v) un.miss_next = mig;
        if (un.true_next == v) un.true_next = mig;
        if (un.false_next == v) un.false_next = mig;
    }
    work.compact();
    work.validate();
    return work;
}

double expected_migrations(const Program& program,
                           const profile::RuntimeProfile& profile) {
    std::vector<double> reach = profile.reach_probabilities(program);
    double total = 0.0;
    for (NodeId id : program.reachable()) {
        const Node& n = program.node(id);
        for (NodeId s : n.successors()) {
            if (program.node(s).core != n.core) {
                total += reach[static_cast<std::size_t>(id)] *
                         profile.edge_probability(n, s);
            }
        }
    }
    return total;
}

NodeId duplicate_table_for_core(Program& program, const std::string& table_name,
                                CoreKind core) {
    NodeId id = program.find_table(table_name);
    if (id == kNoNode) return kNoNode;
    ir::Table copy = program.node(id).table;
    copy.name += core == CoreKind::Cpu ? "_cpu" : "_asic";
    NodeId clone = program.add_table(std::move(copy));
    program.node(clone).core = core;
    return clone;
}

Program optimize_copies(const Program& program,
                        const profile::RuntimeProfile& profile,
                        const cost::CostModel& model, int max_copies) {
    Program best = program;
    double best_cost = model.expected_latency(best, profile);
    for (int round = 0; round < max_copies; ++round) {
        Program round_best = best;
        double round_cost = best_cost;
        bool improved = false;
        for (NodeId id : best.reachable()) {
            const Node& n = best.node(id);
            if (!n.is_table() || n.core != CoreKind::Asic) continue;
            if (!n.table.asic_supported) continue;  // already forced off ASIC
            Program trial = best;
            trial.node(id).core = CoreKind::Cpu;
            double cost = model.expected_latency(trial, profile);
            if (cost < round_cost - 1e-12) {
                round_cost = cost;
                round_best = std::move(trial);
                improved = true;
            }
        }
        if (!improved) break;
        best = std::move(round_best);
        best_cost = round_cost;
    }
    return best;
}

}  // namespace pipeleon::opt
