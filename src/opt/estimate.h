// opt/estimate.h — cost-model evaluation of candidate layouts. For each
// candidate the evaluator computes the transformed pipelet's expected
// latency (with drop truncation), plus the additional memory and entry-
// update bandwidth it would consume — the three quantities the global
// knapsack search trades off (Eq. 5). Evaluation is purely analytic: no
// program is materialized, which is what keeps the search fast enough for
// sub-minute runtime reoptimization (§5.4.2).
#pragma once

#include <vector>

#include "analysis/dependency.h"
#include "analysis/pipelet.h"
#include "cost/model.h"
#include "ir/program.h"
#include "opt/candidate.h"
#include "profile/profile.h"

namespace pipeleon::opt {

/// Outcome of evaluating one candidate layout.
struct EvalResult {
    bool valid = false;
    double latency = 0.0;        ///< expected L(G') of the transformed pipelet
    double extra_memory = 0.0;   ///< additional bytes vs. the baseline
    double extra_updates = 0.0;  ///< additional entry updates/sec vs. baseline
};

/// Evaluates candidate layouts for a single pipelet.
class PipeletEvaluator {
public:
    PipeletEvaluator(const ir::Program& program, const analysis::Pipelet& pipelet,
                     const profile::RuntimeProfile& profile,
                     const cost::CostModel& model);

    std::size_t size() const { return tables_.size(); }
    const analysis::DependencyGraph& deps() const { return deps_; }
    const ir::Table& table(std::size_t original_pos) const {
        return tables_[original_pos];
    }

    /// L(G') of the unmodified pipelet.
    double baseline_latency() const;

    /// Measured drop probability of the table at an original position.
    double drop_probability(std::size_t original_pos) const {
        return info_[original_pos].drop_prob;
    }

    /// A dependency-respecting order that greedily places the highest-drop
    /// table next (§3.2.1: "promotes tables with higher dropping rates to
    /// earlier parts of the program"). With 64+-permutation pipelets the
    /// exhaustive order enumeration cannot reach such orders within its cap,
    /// so the search seeds its order list with this one.
    std::vector<std::size_t> greedy_drop_order() const;

    /// Packets per second entering the pipelet during the profile window.
    double traffic_rate() const { return traffic_rate_; }

    /// Full legality + cost evaluation of a layout.
    EvalResult evaluate(const CandidateLayout& layout) const;

    /// Segment legality (already mapped through `order`).
    bool can_cache_segment(const std::vector<std::size_t>& order,
                           const Segment& seg) const;
    bool can_merge_segment(const std::vector<std::size_t>& order,
                           const Segment& seg, bool as_cache) const;

private:
    /// Cost-model facts about one table, precomputed per original position.
    struct Info {
        double match_cost = 0.0;   ///< m * L_mat
        double action_cost = 0.0;  ///< Σ P(a) n_a L_act
        double instr_cost = 0.0;   ///< counter update share
        double drop_prob = 0.0;
        double miss_prob = 0.0;
        double entries = 1.0;
        double update_rate = 0.0;
        double entry_bytes = 0.0;  ///< key bytes + overhead
        double memory = 0.0;       ///< current M(v)
        int m = 1;
        bool exact = true;
        bool optimizable = true;  ///< Original-role table
        /// Measured cache statistics attributed to this table (non-zero only
        /// when a deployed cache currently covers it).
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;
        /// Update rate across the covering cache's whole origin set; when
        /// high, the measured hit rate is churn noise (contaminated).
        double covering_update_rate = 0.0;
    };

    /// Predicted hit rate for a cache over the given covered tables: the
    /// measured rate when one is deployed, otherwise the default decayed by
    /// the covered tables' update rates (invalidation model).
    double segment_hit_rate(const std::vector<const Info*>& infos) const;

    double node_cost(const Info& info) const {
        return info.match_cost + info.action_cost + info.instr_cost;
    }

    std::vector<ir::Table> tables_;  // by original position
    std::vector<Info> info_;
    analysis::DependencyGraph deps_;
    cost::CostParams params_;
    double instr_cost_ = 0.0;
    double traffic_rate_ = 0.0;
};

}  // namespace pipeleon::opt
