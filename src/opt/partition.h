// opt/partition.h — heterogeneous-target extensions (§3.2.4). SmartNICs like
// BlueField2 mix ASIC packet engines with CPU cores; tables whose actions
// the ASIC cannot run must execute on CPU cores, and packets migrate between
// the two with the processing context piggybacked (next_tab_id metadata).
// Pipeleon inserts a navigation table at the front and a migration table at
// the end of each program component assigned to a core, and minimizes
// migration overhead by reordering, caching, and *table copying* (Fig 7):
// duplicating an ASIC-resident table onto the CPU so software-bound packets
// need not bounce back for it.
#pragma once

#include "cost/model.h"
#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::profile {
class RuntimeProfile;
}

namespace pipeleon::opt {

/// Metadata field carrying the resume point across migrations.
inline constexpr const char* kNextTabIdField = "meta.next_tab_id";

/// Assigns each table node to ASIC or CPU cores by its `asic_supported`
/// flag (the naive partition: "ASIC-unsupported operations should run on
/// CPU cores"). Branches stay on the core of their predecessor region.
ir::Program partition_by_support(const ir::Program& program);

/// Inserts a Navigation table at the entry and a Migration table at the
/// exit of every maximal same-core region whose boundary is crossed by an
/// edge. Both are exact-match tables on next_tab_id with a no-op default,
/// so they model the context save/restore cost without needing entries.
ir::Program insert_migration_tables(const ir::Program& program);

/// Expected number of ASIC<->CPU migrations per packet under `profile`.
double expected_migrations(const ir::Program& program,
                           const profile::RuntimeProfile& profile);

/// Duplicates the named table for the given core: the clone (name suffixed
/// "_cpu"/"_asic") is added unreachable, for the caller to wire into the
/// desired path. Returns the clone's node id.
ir::NodeId duplicate_table_for_core(ir::Program& program,
                                    const std::string& table_name,
                                    ir::CoreKind core);

/// Greedy table-copy optimization: while it lowers the cost model's expected
/// latency (CPU slowdown traded against saved migrations), reassigns the
/// single best ASIC table to CPU cores, up to `max_copies` tables. Matches
/// the paper's observation that copying one table can be useless ("copying
/// only one table does not reduce the needed migration") — the greedy step
/// simply finds no improving move in that case.
ir::Program optimize_copies(const ir::Program& program,
                            const profile::RuntimeProfile& profile,
                            const cost::CostModel& model, int max_copies);

}  // namespace pipeleon::opt
