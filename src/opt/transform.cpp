#include "opt/transform.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/verify.h"
#include "opt/cache.h"
#include "opt/merge.h"
#include "util/strings.h"

namespace pipeleon::opt {

using ir::kNoNode;
using ir::Node;
using ir::NodeId;
using ir::Program;

void repoint_edges(Program& program, NodeId from, NodeId to) {
    for (std::size_t i = 0; i < program.node_count(); ++i) {
        Node& n = program.node(static_cast<NodeId>(i));
        for (NodeId& t : n.next_by_action) {
            if (t == from) t = to;
        }
        if (n.miss_next == from) n.miss_next = to;
        if (n.true_next == from) n.true_next = to;
        if (n.false_next == from) n.false_next = to;
    }
    if (program.root() == from) program.set_root(to);
}

namespace {

/// A plan pre-condition failure: one structured diagnostic wrapped in the
/// typed VerifyError (the search should have filtered the plan out).
[[noreturn]] void fail_plan(const std::string& rule, ir::NodeId node,
                            const std::string& message) {
    analysis::DiagnosticList d;
    d.error(rule, node, message);
    throw analysis::VerifyError("opt.apply_plans", std::move(d));
}

/// One element of the rewritten pipelet chain: a head node that receives
/// the traffic and a function of "what every exit of this element should
/// point to".
struct Element {
    NodeId head = kNoNode;
    /// Nodes whose uniform next must point at the following element (the
    /// plain/merged node itself, or the last covered fall-through table).
    std::vector<NodeId> uniform_tails;
    /// Cache-style heads: action edges point to the following element while
    /// the miss edge enters the fall-through chain (already wired).
    std::vector<NodeId> action_edge_tails;
};

}  // namespace

Program apply_plans(const Program& program,
                    const std::vector<analysis::Pipelet>& pipelets,
                    const std::vector<PipeletPlan>& plans,
                    std::optional<analysis::VerifyMode> mode) {
    Program work = program;

    for (const PipeletPlan& plan : plans) {
        if (plan.pipelet_id < 0 ||
            static_cast<std::size_t>(plan.pipelet_id) >= pipelets.size()) {
            fail_plan("apply.pipelet-id", ir::kNoNode,
                      util::format("plan names pipelet %d of %zu",
                                   plan.pipelet_id, pipelets.size()));
        }
        const analysis::Pipelet& pipelet =
            pipelets[static_cast<std::size_t>(plan.pipelet_id)];
        const CandidateLayout& layout = plan.layout;
        const std::size_t n = pipelet.nodes.size();
        if (layout.is_identity()) continue;
        if (layout.order.size() != n || !layout.segments_valid(n)) {
            fail_plan("apply.layout", pipelet.entry(),
                      "malformed layout for pipelet " +
                          std::to_string(plan.pipelet_id));
        }
        if (pipelet.is_switch_case) {
            fail_plan("apply.switch-case", pipelet.entry(),
                      "switch-case pipelets are not transformable");
        }

        // Ordered node ids after reordering.
        std::vector<NodeId> ordered(n);
        for (std::size_t i = 0; i < n; ++i) {
            ordered[i] = pipelet.nodes[layout.order[i]];
        }

        // Capture the incoming edges of the pipelet entry *before* internal
        // rewiring: new fall-through edges created below may legitimately
        // point at the old entry and must not be redirected.
        NodeId old_entry = pipelet.nodes.front();
        struct EdgeRef {
            NodeId node;
            enum class Slot { Action, Miss, True, False } slot;
            std::size_t index = 0;
        };
        std::vector<EdgeRef> incoming;
        bool entry_is_root = work.root() == old_entry;
        for (std::size_t i = 0; i < work.node_count(); ++i) {
            Node& nd = work.node(static_cast<NodeId>(i));
            for (std::size_t a = 0; a < nd.next_by_action.size(); ++a) {
                if (nd.next_by_action[a] == old_entry) {
                    incoming.push_back({nd.id, EdgeRef::Slot::Action, a});
                }
            }
            if (nd.miss_next == old_entry) {
                incoming.push_back({nd.id, EdgeRef::Slot::Miss, 0});
            }
            if (nd.true_next == old_entry) {
                incoming.push_back({nd.id, EdgeRef::Slot::True, 0});
            }
            if (nd.false_next == old_entry) {
                incoming.push_back({nd.id, EdgeRef::Slot::False, 0});
            }
        }

        // Build the element sequence. New nodes are appended to `work`;
        // existing ids remain valid.
        std::vector<Element> elements;
        std::size_t p = 0;
        while (p < n) {
            const Segment* cache_seg = nullptr;
            const MergeSpec* merge_spec = nullptr;
            for (const Segment& s : layout.caches) {
                if (s.first == p) cache_seg = &s;
            }
            for (const MergeSpec& m : layout.merges) {
                if (m.seg.first == p) merge_spec = &m;
            }

            if (cache_seg != nullptr) {
                std::vector<const ir::Table*> covered;
                for (std::size_t q = cache_seg->first; q <= cache_seg->last; ++q) {
                    covered.push_back(&work.node(ordered[q]).table);
                }
                if (!cacheable(covered)) {
                    fail_plan("apply.cache", pipelet.entry(),
                              "segment not cacheable in pipelet " +
                                  std::to_string(plan.pipelet_id));
                }
                ir::Table cache_table =
                    build_cache_table(covered, layout.cache_config);
                NodeId cache_id = work.add_table(std::move(cache_table));

                Element e;
                e.head = cache_id;
                e.action_edge_tails.push_back(cache_id);
                // Miss falls through the covered chain.
                work.node(cache_id).miss_next = ordered[cache_seg->first];
                for (std::size_t q = cache_seg->first; q < cache_seg->last; ++q) {
                    work.node(ordered[q]).set_uniform_next(ordered[q + 1]);
                }
                e.uniform_tails.push_back(ordered[cache_seg->last]);
                elements.push_back(std::move(e));
                p = cache_seg->last + 1;
                continue;
            }

            if (merge_spec != nullptr) {
                std::vector<const ir::Table*> sources;
                for (std::size_t q = merge_spec->seg.first;
                     q <= merge_spec->seg.last; ++q) {
                    sources.push_back(&work.node(ordered[q]).table);
                }
                auto merged =
                    build_merged_table(sources, merge_spec->as_cache);
                if (!merged.has_value()) {
                    fail_plan("apply.merge", pipelet.entry(),
                              "segment not mergeable in pipelet " +
                                  std::to_string(plan.pipelet_id));
                }
                NodeId merged_id = work.add_table(std::move(*merged));

                Element e;
                e.head = merged_id;
                if (merge_spec->as_cache) {
                    // Hit actions bypass the originals; a miss falls through
                    // the original covered chain.
                    e.action_edge_tails.push_back(merged_id);
                    work.node(merged_id).miss_next = ordered[merge_spec->seg.first];
                    for (std::size_t q = merge_spec->seg.first;
                         q < merge_spec->seg.last; ++q) {
                        work.node(ordered[q]).set_uniform_next(ordered[q + 1]);
                    }
                    e.uniform_tails.push_back(ordered[merge_spec->seg.last]);
                } else {
                    // Full merge: the originals drop out of the pipeline.
                    e.uniform_tails.push_back(merged_id);
                }
                elements.push_back(std::move(e));
                p = merge_spec->seg.last + 1;
                continue;
            }

            Element e;
            e.head = ordered[p];
            e.uniform_tails.push_back(ordered[p]);
            elements.push_back(std::move(e));
            ++p;
        }

        // Splice the chain into the program: the captured incoming edges go
        // to the first element; each element's tails point to the next; the
        // final element exits to the pipelet's original exit.
        NodeId new_entry = elements.front().head;
        if (old_entry != new_entry) {
            for (const EdgeRef& ref : incoming) {
                Node& nd = work.node(ref.node);
                switch (ref.slot) {
                    case EdgeRef::Slot::Action:
                        nd.next_by_action[ref.index] = new_entry;
                        break;
                    case EdgeRef::Slot::Miss: nd.miss_next = new_entry; break;
                    case EdgeRef::Slot::True: nd.true_next = new_entry; break;
                    case EdgeRef::Slot::False: nd.false_next = new_entry; break;
                }
            }
            if (entry_is_root) work.set_root(new_entry);
        }

        for (std::size_t i = 0; i < elements.size(); ++i) {
            NodeId next =
                i + 1 < elements.size() ? elements[i + 1].head : pipelet.exit;
            for (NodeId tail : elements[i].uniform_tails) {
                work.node(tail).set_uniform_next(next);
            }
            for (NodeId tail : elements[i].action_edge_tails) {
                Node& t = work.node(tail);
                NodeId keep_miss = t.miss_next;
                for (NodeId& a : t.next_by_action) a = next;
                t.miss_next = keep_miss;
            }
        }
    }

    work.compact();

    // Post-rewrite verification (ISSUE 2): Layer 1 checks the rewired DAG,
    // Layer 2 re-derives the dependency analysis and proves the plans
    // preserved it. Off keeps the seed's bare validate() for measured loops.
    switch (mode.value_or(analysis::verify_mode())) {
        case analysis::VerifyMode::Off:
            work.validate();
            break;
        case analysis::VerifyMode::Structure:
            analysis::verify_structure_or_throw(work, "opt.apply_plans");
            break;
        case analysis::VerifyMode::Full:
            analysis::verify_translation_or_throw(program, pipelets, plans,
                                                  work, "opt.apply_plans");
            break;
    }
    return work;
}

Program apply_plan(const Program& program,
                   const std::vector<analysis::Pipelet>& pipelets,
                   const PipeletPlan& plan,
                   std::optional<analysis::VerifyMode> mode) {
    return apply_plans(program, pipelets, {plan}, mode);
}

}  // namespace pipeleon::opt
