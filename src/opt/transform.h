// opt/transform.h — source-to-source application of optimization plans.
// Pipeleon "performs source-to-source compilation": the input program graph
// is rewritten — tables reordered, cache nodes inserted in front of covered
// runs, merged tables spliced in — and the result is handed to the target
// (our emulator, or serialized back to JSON for a vendor toolchain).
// Transformations only add nodes and rewire edges; superseded nodes become
// unreachable and are dropped by the final compaction, which keeps node ids
// stable while the rewrite is in progress.
#pragma once

#include <optional>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/pipelet.h"
#include "ir/program.h"
#include "opt/candidate.h"

namespace pipeleon::opt {

/// A chosen layout for one pipelet.
struct PipeletPlan {
    int pipelet_id = -1;
    CandidateLayout layout;
};

/// Applies the plans to (a copy of) `program`. `pipelets` must be the
/// partition of `program` the plan ids refer to. Returns the optimized,
/// compacted, verified program.
///
/// Throws analysis::VerifyError (a std::runtime_error) when a plan is
/// structurally inapplicable, or when the verifier rejects the rewritten
/// program. `mode` selects how much checking runs on the result: nullopt
/// uses the process default (analysis::verify_mode() — Layer 1 + Layer 2 in
/// debug builds, Layer 1 in release); VerifyMode::Off restores the seed's
/// bare structural validate() for measured hot loops.
ir::Program apply_plans(const ir::Program& program,
                        const std::vector<analysis::Pipelet>& pipelets,
                        const std::vector<PipeletPlan>& plans,
                        std::optional<analysis::VerifyMode> mode = std::nullopt);

/// Convenience: applies a single plan.
ir::Program apply_plan(const ir::Program& program,
                       const std::vector<analysis::Pipelet>& pipelets,
                       const PipeletPlan& plan,
                       std::optional<analysis::VerifyMode> mode = std::nullopt);

/// Repoints every edge in `program` that targets `from` to `to` (action
/// edges, miss edges, branch edges, and the root). Exposed for the
/// partitioning pass and for tests.
void repoint_edges(ir::Program& program, ir::NodeId from, ir::NodeId to);

}  // namespace pipeleon::opt
