// opt/transform.h — source-to-source application of optimization plans.
// Pipeleon "performs source-to-source compilation": the input program graph
// is rewritten — tables reordered, cache nodes inserted in front of covered
// runs, merged tables spliced in — and the result is handed to the target
// (our emulator, or serialized back to JSON for a vendor toolchain).
// Transformations only add nodes and rewire edges; superseded nodes become
// unreachable and are dropped by the final compaction, which keeps node ids
// stable while the rewrite is in progress.
#pragma once

#include <vector>

#include "analysis/pipelet.h"
#include "ir/program.h"
#include "opt/candidate.h"

namespace pipeleon::opt {

/// A chosen layout for one pipelet.
struct PipeletPlan {
    int pipelet_id = -1;
    CandidateLayout layout;
};

/// Applies the plans to (a copy of) `program`. `pipelets` must be the
/// partition of `program` the plan ids refer to. Returns the optimized,
/// compacted, validated program. Throws std::runtime_error when a plan is
/// structurally inapplicable (the search should have filtered it).
ir::Program apply_plans(const ir::Program& program,
                        const std::vector<analysis::Pipelet>& pipelets,
                        const std::vector<PipeletPlan>& plans);

/// Convenience: applies a single plan.
ir::Program apply_plan(const ir::Program& program,
                       const std::vector<analysis::Pipelet>& pipelets,
                       const PipeletPlan& plan);

/// Repoints every edge in `program` that targets `from` to `to` (action
/// edges, miss edges, branch edges, and the root). Exposed for the
/// partitioning pass and for tests.
void repoint_edges(ir::Program& program, ir::NodeId from, ir::NodeId to);

}  // namespace pipeleon::opt
