#include "opt/merge.h"

#include <algorithm>

#include "profile/counter_map.h"  // kMergedActionSep
#include "util/strings.h"

namespace pipeleon::opt {

using ir::Action;
using ir::FieldMatch;
using ir::MatchKey;
using ir::MatchKind;
using ir::Primitive;
using ir::Table;
using ir::TableEntry;

int action_arg_count(const Action& action) {
    int max_arg = -1;
    for (const Primitive& p : action.primitives) {
        max_arg = std::max(max_arg, p.arg_index);
    }
    return max_arg + 1;
}

namespace {

/// Marker for "table missed and has no default action" components.
const char* kMissMarker = "-";

std::uint64_t full_mask(int width_bits) {
    if (width_bits >= 64) return ~0ULL;
    return (1ULL << width_bits) - 1;
}

std::uint64_t lpm_mask(int prefix_len, int width_bits) {
    if (prefix_len <= 0) return 0;
    if (prefix_len >= width_bits) return full_mask(width_bits);
    return full_mask(width_bits) & ~full_mask(width_bits - prefix_len);
}

/// Per-table component choice during cross-product enumeration.
struct Component {
    /// Action index in the source table, or -1 for a miss.
    int action = -1;
    /// Entry index in the source entry list, or -1 for a miss row.
    int entry = -1;
};

std::string component_name(const Table& src, int action) {
    if (action >= 0) return src.actions[static_cast<std::size_t>(action)].name;
    if (src.default_action >= 0) {
        return src.actions[static_cast<std::size_t>(src.default_action)].name;
    }
    return kMissMarker;
}

}  // namespace

bool mergeable(const std::vector<const Table*>& sources, bool as_cache) {
    if (sources.size() < 2) return false;
    for (const Table* t : sources) {
        if (t == nullptr) return false;
        if (t->role != ir::TableRole::Original) return false;
        for (const Action& a : t->actions) {
            if (a.name.find(profile::kMergedActionSep) != std::string::npos) {
                return false;
            }
        }
        if (as_cache) {
            for (const MatchKey& k : t->keys) {
                if (k.kind != MatchKind::Exact) return false;
            }
        } else if (t->default_action >= 0) {
            // Full-merge wildcard rows execute the default action with no
            // entry to supply action data.
            const Action& dflt =
                t->actions[static_cast<std::size_t>(t->default_action)];
            if (action_arg_count(dflt) > 0) return false;
        }
    }
    return true;
}

std::optional<Table> build_merged_table(const std::vector<const Table*>& sources,
                                        bool as_cache, const std::string& name,
                                        const MergeLimits& limits) {
    if (!mergeable(sources, as_cache)) return std::nullopt;

    Table merged;
    merged.role = as_cache ? ir::TableRole::MergedCache : ir::TableRole::Merged;
    std::vector<std::string> names;
    for (const Table* t : sources) {
        names.push_back(t->name);
        merged.origin_tables.push_back(t->name);
        for (const MatchKey& k : t->keys) {
            MatchKey mk = k;
            if (!as_cache) mk.kind = MatchKind::Ternary;  // naive merge (Fig 6)
            merged.keys.push_back(std::move(mk));
        }
    }
    merged.name = name.empty() ? "merge_" + util::join(names, "_") : name;

    // Cross product of actions. Each table contributes its actions plus, for
    // full merges, a miss component (the default action, or a no-op when the
    // table has no default).
    std::size_t combos = 1;
    for (const Table* t : sources) {
        std::size_t per = t->actions.size();
        if (!as_cache) {
            // Miss adds a distinct component only when the table has no
            // default action (otherwise the miss reuses the default action's
            // component).
            if (t->default_action < 0) per += 1;
        }
        combos *= per;
        if (combos > limits.max_actions) return std::nullopt;
    }

    // Enumerate component tuples.
    std::vector<std::vector<int>> choices;  // per table: action ids (+ -1 miss)
    for (const Table* t : sources) {
        std::vector<int> c;
        for (std::size_t a = 0; a < t->actions.size(); ++a) {
            c.push_back(static_cast<int>(a));
        }
        if (!as_cache && t->default_action < 0) c.push_back(-1);
        choices.push_back(std::move(c));
    }

    std::vector<int> idx(sources.size(), 0);
    while (true) {
        Action act;
        std::vector<std::string> parts;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            const Table& src = *sources[i];
            int a = choices[i][static_cast<std::size_t>(idx[i])];
            parts.push_back(component_name(src, a));
            int effective = a >= 0 ? a : src.default_action;
            if (effective >= 0) {
                const Action& sa =
                    src.actions[static_cast<std::size_t>(effective)];
                int offset = action_arg_count(act);
                for (Primitive p : sa.primitives) {
                    if (p.arg_index >= 0) p.arg_index += offset;
                    act.primitives.push_back(std::move(p));
                }
            }
        }
        act.name = util::join(parts, std::string(1, profile::kMergedActionSep));
        // De-duplicate: different component tuples can produce the same name
        // (miss vs executing the default action explicitly).
        if (merged.action_index(act.name) < 0) {
            merged.actions.push_back(std::move(act));
        }

        // Advance the odometer.
        std::size_t d = 0;
        while (d < idx.size()) {
            if (++idx[d] < static_cast<int>(choices[d].size())) break;
            idx[d] = 0;
            ++d;
        }
        if (d == idx.size()) break;
    }

    // A miss on the merged table behaves like every source missing: the
    // tuple where each source executes its default action (or nothing).
    if (!as_cache) {
        std::vector<std::string> miss_parts;
        for (const Table* t : sources) miss_parts.push_back(component_name(*t, -1));
        merged.default_action = merged.action_index(
            util::join(miss_parts, std::string(1, profile::kMergedActionSep)));
    } else {
        merged.default_action = -1;  // miss falls back to the original tables
    }

    std::size_t size = 1;
    for (const Table* t : sources) size *= std::max<std::size_t>(1, t->size);
    merged.size = std::min<std::size_t>(size, limits.max_entries);
    merged.asic_supported =
        std::all_of(sources.begin(), sources.end(),
                    [](const Table* t) { return t->asic_supported; });
    return merged;
}

std::optional<std::vector<TableEntry>> build_merged_entries(
    const std::vector<const Table*>& sources,
    const std::vector<std::vector<TableEntry>>& source_entries,
    const Table& merged, bool as_cache, const MergeLimits& limits) {
    if (sources.size() != source_entries.size()) return std::nullopt;

    // Worst-case product check before enumerating.
    double product = 1.0;
    for (const auto& entries : source_entries) {
        product *= static_cast<double>(entries.size() + (as_cache ? 0 : 1));
        if (product > static_cast<double>(limits.max_entries)) return std::nullopt;
    }

    std::vector<TableEntry> result;
    std::vector<int> idx(sources.size(), 0);  // entry index; size() means miss

    auto choices_for = [&](std::size_t i) -> int {
        int n = static_cast<int>(source_entries[i].size());
        return as_cache ? n : n + 1;  // full merges add the miss row
    };
    for (std::size_t i = 0; i < sources.size(); ++i) {
        if (choices_for(i) == 0) return result;  // empty source, empty cache
    }

    while (true) {
        TableEntry row;
        std::vector<std::string> parts;
        int hit_components = 0;
        bool skip = false;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            const Table& src = *sources[i];
            bool miss = idx[i] == static_cast<int>(source_entries[i].size());
            if (miss) {
                parts.push_back(component_name(src, -1));
                for (const MatchKey& k : src.keys) {
                    (void)k;
                    row.key.push_back(FieldMatch::wildcard());
                }
            } else {
                const TableEntry& e =
                    source_entries[i][static_cast<std::size_t>(idx[i])];
                if (e.action_index < 0 ||
                    static_cast<std::size_t>(e.action_index) >=
                        src.actions.size()) {
                    skip = true;
                    break;
                }
                ++hit_components;
                parts.push_back(
                    src.actions[static_cast<std::size_t>(e.action_index)].name);
                for (std::size_t c = 0; c < e.key.size(); ++c) {
                    const FieldMatch& m = e.key[c];
                    int width = src.keys[c].width_bits;
                    if (as_cache) {
                        row.key.push_back(m);  // exact sources only
                    } else {
                        switch (m.kind) {
                            case MatchKind::Exact:
                                row.key.push_back(FieldMatch::ternary(
                                    m.value, full_mask(width)));
                                break;
                            case MatchKind::Lpm:
                                row.key.push_back(FieldMatch::ternary(
                                    m.value, lpm_mask(m.prefix_len, width)));
                                break;
                            case MatchKind::Ternary:
                                row.key.push_back(m);
                                break;
                            case MatchKind::Range:
                                // Ranges cannot be mask-encoded; reject.
                                skip = true;
                                break;
                        }
                    }
                    if (skip) break;
                }
                for (std::uint64_t v : e.action_data) row.action_data.push_back(v);
            }
            if (skip) break;
        }

        if (!skip) {
            std::string action_name =
                util::join(parts, std::string(1, profile::kMergedActionSep));
            int a = merged.action_index(action_name);
            bool all_miss = hit_components == 0;
            // The all-miss combo is covered by the merged default action;
            // a wildcard row would be redundant.
            if (a >= 0 && !(all_miss && merged.default_action == a)) {
                row.action_index = a;
                row.priority = hit_components;
                result.push_back(std::move(row));
                if (result.size() > limits.max_entries) return std::nullopt;
            }
        }

        std::size_t d = 0;
        while (d < idx.size()) {
            if (++idx[d] < choices_for(d)) break;
            idx[d] = 0;
            ++d;
        }
        if (d == idx.size()) break;
    }
    return result;
}

double estimated_merged_entries(const std::vector<double>& source_entry_counts) {
    double product = 1.0;
    for (double n : source_entry_counts) product *= std::max(1.0, n);
    return product;
}

double estimated_merged_update_rate(const std::vector<double>& source_entry_counts,
                                    const std::vector<double>& source_update_rates) {
    double total = 0.0;
    for (std::size_t k = 0; k < source_update_rates.size(); ++k) {
        double amplification = 1.0;
        for (std::size_t j = 0; j < source_entry_counts.size(); ++j) {
            if (j != k) amplification *= std::max(1.0, source_entry_counts[j]);
        }
        total += source_update_rates[k] * amplification;
    }
    return total;
}

}  // namespace pipeleon::opt
