#include "opt/memory_tiers.h"

#include <algorithm>
#include <vector>

namespace pipeleon::opt {

using ir::NodeId;

TierAssignment assign_memory_tiers(const ir::Program& program,
                                   const profile::RuntimeProfile& profile,
                                   const cost::CostModel& model) {
    TierAssignment result;
    result.program = program;
    const cost::CostParams& params = model.params();
    if (params.l_mat_fast <= 0.0 || params.fast_memory_bytes <= 0.0 ||
        params.l_mat_fast >= params.l_mat) {
        return result;  // no fast tier on this target
    }

    struct Candidate {
        NodeId node;
        double benefit;  // expected cycles saved per packet
        double bytes;
    };
    std::vector<double> reach = profile.reach_probabilities(result.program);
    std::vector<Candidate> candidates;
    for (NodeId id : result.program.reachable()) {
        const ir::Node& n = result.program.node(id);
        if (!n.is_table()) continue;
        const profile::TableStats& stats = profile.table(id);
        double m = static_cast<double>(model.m_multiplier(n.table, stats));
        double benefit = reach[static_cast<std::size_t>(id)] * m *
                         (params.l_mat - params.l_mat_fast);
        double bytes = model.memory_bytes(n.table, stats);
        if (benefit > 0.0 && bytes > 0.0) {
            candidates.push_back({id, benefit, bytes});
        }
    }
    // Density greedy: best saved-cycles-per-byte first; deterministic ties.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  double da = a.benefit / a.bytes, db = b.benefit / b.bytes;
                  if (da != db) return da > db;
                  return a.node < b.node;
              });

    double budget = params.fast_memory_bytes;
    for (const Candidate& c : candidates) {
        if (c.bytes > budget) continue;
        result.program.node(c.node).table.tier = ir::MemTier::Fast;
        budget -= c.bytes;
        result.fast_bytes_used += c.bytes;
        result.predicted_gain += c.benefit;
        ++result.tables_in_fast;
    }
    return result;
}

}  // namespace pipeleon::opt
