#include "opt/memory_tiers.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pipeleon::opt {

using ir::NodeId;

TierAssignment assign_memory_tiers(const ir::Program& program,
                                   const profile::RuntimeProfile& profile,
                                   const cost::CostModel& model) {
    TierAssignment result;
    result.program = program;
    const cost::CostParams& params = model.params();

    const bool has_fast = params.l_mat_fast > 0.0 &&
                          params.fast_memory_bytes > 0.0 &&
                          params.l_mat_fast < params.l_mat;
    const bool has_dram = params.dram_memory_bytes > 0.0;
    const bool has_host = params.host_memory_bytes > 0.0;
    if (!has_fast && !has_dram && !has_host) return result;

    std::vector<double> reach = profile.reach_probabilities(result.program);

    // ------------------------------------------------- stage 1: fast greedy
    if (has_fast) {
        struct Candidate {
            NodeId node;
            double benefit;  // expected cycles saved per packet
            double bytes;
        };
        std::vector<Candidate> candidates;
        for (NodeId id : result.program.reachable()) {
            const ir::Node& n = result.program.node(id);
            if (!n.is_table()) continue;
            const profile::TableStats& stats = profile.table(id);
            double m = static_cast<double>(model.m_multiplier(n.table, stats));
            double benefit = reach[static_cast<std::size_t>(id)] * m *
                             (params.l_mat - params.l_mat_fast);
            double bytes = model.memory_bytes(n.table, stats);
            if (benefit > 0.0 && bytes > 0.0) {
                candidates.push_back({id, benefit, bytes});
            }
        }
        // Density greedy: best saved-cycles-per-byte first; deterministic
        // ties.
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate& a, const Candidate& b) {
                      double da = a.benefit / a.bytes, db = b.benefit / b.bytes;
                      if (da != db) return da > db;
                      return a.node < b.node;
                  });

        double budget = params.fast_memory_bytes;
        for (const Candidate& c : candidates) {
            if (c.bytes > budget) continue;
            result.program.node(c.node).table.tier = ir::MemTier::Fast;
            budget -= c.bytes;
            result.fast_bytes_used += c.bytes;
            result.predicted_gain += c.benefit;
            ++result.tables_in_fast;
        }
    }
    if (!has_dram && !has_host) return result;

    // ------------------------------------------- stage 2: spill cold tables
    //
    // Every Default-tier (non-cache) table lives in NIC DRAM. When their
    // combined footprint exceeds the DRAM budget and a host budget exists,
    // demote the coldest benefit-density tables to MemTier::Host — the
    // cycles a resident table saves are the l_tier_host premium every probe
    // of a spilled table would pay.
    struct Resident {
        NodeId node;
        double density;  // saved cycles per byte of staying resident
        double bytes;
    };
    std::vector<Resident> residents;
    double default_bytes = 0.0;
    for (NodeId id : result.program.reachable()) {
        const ir::Node& n = result.program.node(id);
        if (!n.is_table() || n.table.tier != ir::MemTier::Default) continue;
        if (n.table.role == ir::TableRole::Cache) continue;
        const profile::TableStats& stats = profile.table(id);
        double bytes = model.memory_bytes(n.table, stats);
        if (bytes <= 0.0) continue;
        double m = static_cast<double>(model.m_multiplier(n.table, stats));
        double benefit =
            reach[static_cast<std::size_t>(id)] * m * params.l_tier_host;
        residents.push_back({id, benefit / bytes, bytes});
        default_bytes += bytes;
    }
    double dram_used = default_bytes;
    if (has_host && has_dram && default_bytes > params.dram_memory_bytes) {
        std::sort(residents.begin(), residents.end(),
                  [](const Resident& a, const Resident& b) {
                      if (a.density != b.density) return a.density < b.density;
                      return a.node < b.node;
                  });
        for (const Resident& r : residents) {
            if (dram_used <= params.dram_memory_bytes) break;
            result.program.node(r.node).table.tier = ir::MemTier::Host;
            dram_used -= r.bytes;
            result.host_bytes_used += r.bytes;
            ++result.tables_in_host;
        }
    }
    result.dram_bytes_used = dram_used;

    // --------------------------------------- stage 3: carve cache capacity
    //
    // Whatever DRAM/host bytes remain become lower-tier *cache* capacity:
    // each cache table's ir::TierConfig gets dram_entries / host_entries,
    // split across caches by profiled reach probability (a cache no traffic
    // reaches earns no budget — unless nothing has traffic yet, in which
    // case the split is even).
    struct CacheSlot {
        NodeId node;
        double weight;
        double entry_bytes;
    };
    std::vector<CacheSlot> caches;
    double total_weight = 0.0;
    for (NodeId id : result.program.reachable()) {
        const ir::Node& n = result.program.node(id);
        if (!n.is_table() || n.table.role != ir::TableRole::Cache) continue;
        double entry_bytes =
            static_cast<double>(n.table.key_width_bits()) / 8.0 +
            static_cast<double>(params.entry_overhead_bytes);
        if (entry_bytes <= 0.0) continue;
        double w = reach[static_cast<std::size_t>(id)];
        caches.push_back({id, w, entry_bytes});
        total_weight += w;
    }
    if (caches.empty()) return result;
    if (total_weight <= 0.0) {
        for (CacheSlot& c : caches) c.weight = 1.0;
        total_weight = static_cast<double>(caches.size());
    }

    const double dram_left =
        has_dram ? std::max(0.0, params.dram_memory_bytes - dram_used) : 0.0;
    const double host_left =
        has_host
            ? std::max(0.0, params.host_memory_bytes - result.host_bytes_used)
            : 0.0;
    for (const CacheSlot& c : caches) {
        const double share = c.weight / total_weight;
        auto entries = [&](double bytes) {
            return static_cast<std::size_t>(
                std::floor(bytes * share / c.entry_bytes));
        };
        ir::TierConfig& tiers =
            result.program.node(c.node).table.cache.tiers;
        tiers.dram_entries = entries(dram_left);
        tiers.host_entries = entries(host_left);
        result.cache_dram_entries += tiers.dram_entries;
        result.cache_host_entries += tiers.host_entries;
    }
    return result;
}

}  // namespace pipeleon::opt
