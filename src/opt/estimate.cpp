#include "opt/estimate.h"

#include <algorithm>
#include <cmath>

#include "opt/cache.h"
#include "opt/merge.h"

namespace pipeleon::opt {

namespace {

std::vector<ir::Table> extract_tables(const ir::Program& program,
                                      const analysis::Pipelet& pipelet) {
    std::vector<ir::Table> tables;
    tables.reserve(pipelet.nodes.size());
    for (ir::NodeId id : pipelet.nodes) tables.push_back(program.node(id).table);
    return tables;
}

}  // namespace

PipeletEvaluator::PipeletEvaluator(const ir::Program& program,
                                   const analysis::Pipelet& pipelet,
                                   const profile::RuntimeProfile& profile,
                                   const cost::CostModel& model)
    : tables_(extract_tables(program, pipelet)),
      deps_(tables_),
      params_(model.params()) {
    instr_cost_ = model.instrumentation().enabled
                      ? params_.l_counter * model.instrumentation().sampling_rate
                      : 0.0;
    info_.reserve(tables_.size());
    for (std::size_t p = 0; p < tables_.size(); ++p) {
        const ir::Node& node = program.node(pipelet.nodes[p]);
        const profile::TableStats& stats = profile.table(node.id);
        Info in;
        in.match_cost = model.match_cost(node.table, stats);
        in.action_cost = model.action_cost(node, profile);
        in.instr_cost = instr_cost_;
        in.drop_prob = profile.drop_probability(node);
        in.miss_prob = profile.miss_probability(node);
        in.entries = static_cast<double>(
            std::max<std::size_t>(1, stats.entry_count));
        in.update_rate = profile.update_rate(node.id);
        in.entry_bytes = static_cast<double>(node.table.key_width_bits()) / 8.0 +
                         static_cast<double>(params_.entry_overhead_bytes);
        in.memory = model.memory_bytes(node.table, stats);
        in.m = model.m_multiplier(node.table, stats);
        in.exact = node.table.effective_match_kind() == ir::MatchKind::Exact;
        in.optimizable = node.table.role == ir::TableRole::Original;
        in.cache_hits = stats.cache_hits;
        in.cache_misses = stats.cache_misses;
        in.covering_update_rate = stats.covering_update_rate;
        info_.push_back(in);
    }
    if (!pipelet.nodes.empty() && profile.window_seconds() > 0.0) {
        traffic_rate_ =
            static_cast<double>(profile.table(pipelet.nodes.front()).lookups()) /
            profile.window_seconds();
    }
}

std::vector<std::size_t> PipeletEvaluator::greedy_drop_order() const {
    const std::size_t n = info_.size();
    std::vector<std::size_t> order;
    std::vector<bool> placed(n, false);
    while (order.size() < n) {
        std::size_t best = n;
        for (std::size_t p = 0; p < n; ++p) {
            if (placed[p]) continue;
            // p may be placed only after every unplaced q < p it depends on.
            bool ready = true;
            for (std::size_t q = 0; q < p && ready; ++q) {
                if (!placed[q] && deps_.dependent(q, p)) ready = false;
            }
            if (!ready) continue;
            if (best == n || info_[p].drop_prob > info_[best].drop_prob) {
                best = p;
            }
        }
        placed[best] = true;
        order.push_back(best);
    }
    return order;
}

double PipeletEvaluator::segment_hit_rate(
    const std::vector<const Info*>& infos) const {
    std::uint64_t hits = 0, misses = 0;
    double update_rate = 0.0;
    double covering_rate = 0.0;
    for (const Info* in : infos) {
        hits += in->cache_hits;
        misses += in->cache_misses;
        update_rate += in->update_rate;
        covering_rate = std::max(covering_rate, in->covering_update_rate);
    }
    // The candidate's own covered update rate always applies as an
    // invalidation discount: every covered-table entry update clears the
    // whole cache. When the segment is churny, that discount is the signal
    // and any measured hit rate is churn noise (and may even have been
    // produced by a deployed cache with different coverage); when the
    // segment is quiet, a measured hit rate from a covering cache refines
    // the default ("continuously monitors its actual performance") — e.g. a
    // cache collapsing under low traffic locality is detected here.
    double discount = 1.0 + params_.cache_invalidation_penalty * update_rate;
    bool churn_dominated = discount > 1.5;
    // A measurement is only meaningful when neither this segment nor the
    // cache that produced the measurement was churning: a collapsed hit
    // rate caused by some other covered table must not condemn this one.
    bool measurement_contaminated =
        1.0 + params_.cache_invalidation_penalty * covering_rate > 1.5;
    double base = params_.default_cache_hit_rate;
    if (!churn_dominated && !measurement_contaminated && hits + misses > 0) {
        base = static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
    return base / discount;
}

double PipeletEvaluator::baseline_latency() const {
    double survive = 1.0;
    double total = 0.0;
    for (const Info& in : info_) {
        total += survive * node_cost(in);
        survive *= 1.0 - in.drop_prob;
    }
    return total;
}

bool PipeletEvaluator::can_cache_segment(const std::vector<std::size_t>& order,
                                         const Segment& seg) const {
    std::vector<const ir::Table*> covered;
    for (std::size_t p = seg.first; p <= seg.last; ++p) {
        std::size_t orig = order[p];
        if (!info_[orig].optimizable) return false;
        covered.push_back(&tables_[orig]);
    }
    return cacheable(covered);
}

bool PipeletEvaluator::can_merge_segment(const std::vector<std::size_t>& order,
                                         const Segment& seg, bool as_cache) const {
    if (seg.length() < 2) return false;
    std::vector<const ir::Table*> covered;
    for (std::size_t p = seg.first; p <= seg.last; ++p) {
        std::size_t orig = order[p];
        if (!info_[orig].optimizable) return false;
        covered.push_back(&tables_[orig]);
    }
    // Merged tables perform every component's match in one lookup: the
    // components must be pairwise independent.
    for (std::size_t i = seg.first; i <= seg.last; ++i) {
        for (std::size_t j = i + 1; j <= seg.last; ++j) {
            if (deps_.dependent(order[i], order[j])) return false;
        }
    }
    return mergeable(covered, as_cache);
}

EvalResult PipeletEvaluator::evaluate(const CandidateLayout& layout) const {
    EvalResult result;
    const std::size_t n = tables_.size();
    if (layout.order.size() != n || !layout.segments_valid(n)) return result;
    if (!deps_.order_is_valid(layout.order)) return result;

    for (const Segment& seg : layout.caches) {
        if (!can_cache_segment(layout.order, seg)) return result;
    }
    for (const MergeSpec& m : layout.merges) {
        if (!can_merge_segment(layout.order, m.seg, m.as_cache)) return result;
    }

    double survive = 1.0;
    double latency = 0.0;
    double extra_memory = 0.0;
    double extra_updates = 0.0;

    auto covered_infos = [this, &layout](const Segment& seg) {
        std::vector<const Info*> infos;
        for (std::size_t p = seg.first; p <= seg.last; ++p) {
            infos.push_back(&info_[layout.order[p]]);
        }
        return infos;
    };

    // Expected cost of executing a run of tables back to back, with drop
    // truncation inside the run; also the hit-path action replay cost and
    // the combined drop probability.
    struct RunEval {
        double run_cost = 0.0;
        double action_replay = 0.0;
        double combined_drop = 0.0;
    };
    auto eval_run = [this](const std::vector<const Info*>& infos) {
        RunEval r;
        double s = 1.0;
        for (const Info* in : infos) {
            r.run_cost += s * node_cost(*in);
            r.action_replay += s * in->action_cost;
            s *= 1.0 - in->drop_prob;
        }
        r.combined_drop = 1.0 - s;
        return r;
    };

    std::size_t p = 0;
    while (p < n) {
        // Segment starting here?
        const Segment* cache_seg = nullptr;
        const MergeSpec* merge_spec = nullptr;
        for (const Segment& s : layout.caches) {
            if (s.first == p) cache_seg = &s;
        }
        for (const MergeSpec& m : layout.merges) {
            if (m.seg.first == p) merge_spec = &m;
        }

        if (cache_seg != nullptr) {
            auto infos = covered_infos(*cache_seg);
            RunEval run = eval_run(infos);
            double h = segment_hit_rate(infos);
            double cost = params_.l_mat + instr_cost_ + h * run.action_replay +
                          (1.0 - h) * run.run_cost;
            latency += survive * cost;

            // Reserved cache budget (fixed, LRU beyond): capacity × entry.
            double key_bytes = 0.0;
            for (const Info* in : infos) key_bytes += in->entry_bytes;
            extra_memory +=
                static_cast<double>(layout.cache_config.capacity) * key_bytes;
            // Insertions happen on misses, capped by the rate limit; the
            // miss traffic is the share that reaches this segment at all.
            double miss_rate = (1.0 - h) * traffic_rate_ * survive;
            extra_updates +=
                std::min(layout.cache_config.max_insert_per_sec, miss_rate);
            survive *= 1.0 - run.combined_drop;
            p = cache_seg->last + 1;
            continue;
        }

        if (merge_spec != nullptr) {
            auto infos = covered_infos(merge_spec->seg);
            RunEval run = eval_run(infos);
            double act_sum = 0.0;
            double entry_bytes = 0.0;
            std::vector<double> entry_counts, update_rates;
            double removed_memory = 0.0, removed_updates = 0.0;
            for (const Info* in : infos) {
                act_sum += in->action_cost;
                entry_bytes += in->entry_bytes;
                entry_counts.push_back(in->entries);
                update_rates.push_back(in->update_rate);
                removed_memory += in->memory;
                removed_updates += in->update_rate;
            }
            double merged_entries = estimated_merged_entries(entry_counts);
            double merged_updates =
                estimated_merged_update_rate(entry_counts, update_rates);

            if (merge_spec->as_cache) {
                // Exact merged cache; hit iff every component hits.
                double h = 1.0;
                for (const Info* in : infos) h *= 1.0 - in->miss_prob;
                double cost = params_.l_mat + instr_cost_ + h * act_sum +
                              (1.0 - h) * run.run_cost;
                latency += survive * cost;
                extra_memory += merged_entries * entry_bytes;  // originals stay
                extra_updates += merged_updates;
            } else {
                // Full merge becomes a wider (usually ternary) table.
                double m_product = 1.0;
                for (const Info* in : infos) {
                    m_product *= static_cast<double>(in->exact ? 2 : in->m + 1);
                }
                double m_ab =
                    std::min(m_product, static_cast<double>(params_.max_m));
                double cost =
                    m_ab * params_.l_mat + instr_cost_ + act_sum;
                latency += survive * cost;
                extra_memory +=
                    merged_entries * entry_bytes * m_ab - removed_memory;
                extra_updates += merged_updates - removed_updates;
            }
            survive *= 1.0 - run.combined_drop;
            p = merge_spec->seg.last + 1;
            continue;
        }

        const Info& in = info_[layout.order[p]];
        latency += survive * node_cost(in);
        survive *= 1.0 - in.drop_prob;
        ++p;
    }

    result.valid = true;
    result.latency = latency;
    result.extra_memory = std::max(0.0, extra_memory);
    result.extra_updates = std::max(0.0, extra_updates);
    return result;
}

}  // namespace pipeleon::opt
