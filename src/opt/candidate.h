// opt/candidate.h — optimization candidates over one pipelet (§4.2). A
// candidate combines (a) a dependency-respecting table order, (b) a set of
// disjoint contiguous cache segments, and (c) a set of disjoint contiguous
// merge segments; caching and merging never apply to the same table ("the
// merging candidate cannot co-exist with other caching candidates" on the
// same tables). Candidates carry the cost-model-evaluated performance gain
// and resource overheads consumed by the global knapsack search.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/table.h"

namespace pipeleon::opt {

/// A contiguous run of positions [first, last] (inclusive) in the
/// candidate's *new* table order.
struct Segment {
    std::size_t first = 0;
    std::size_t last = 0;

    std::size_t length() const { return last - first + 1; }
    bool contains(std::size_t p) const { return p >= first && p <= last; }
    bool overlaps(const Segment& other) const {
        return first <= other.last && other.first <= last;
    }
    bool operator==(const Segment&) const = default;
};

/// A merge segment plus the fallback flavor: `as_cache` merges into an
/// exact-match table whose misses fall back to the original tables
/// (§3.2.3's answer to the exact→ternary blowup of Fig 6).
struct MergeSpec {
    Segment seg;
    bool as_cache = false;

    bool operator==(const MergeSpec&) const = default;
};

/// The structural part of a candidate: what the transformed pipelet looks
/// like, independent of its evaluation.
struct CandidateLayout {
    /// Permutation of the pipelet's original positions; order[i] is the
    /// original position of the table now at position i. Identity = no
    /// reordering.
    std::vector<std::size_t> order;
    std::vector<Segment> caches;
    std::vector<MergeSpec> merges;
    /// Cache sizing/limits applied to every cache this candidate creates.
    ir::CacheConfig cache_config;

    bool is_identity() const;
    /// True when no segment pair overlaps and all segments are in range for
    /// `n` tables.
    bool segments_valid(std::size_t n) const;

    /// Human-readable form, e.g. "order=[2,0,1] cache=[0-1] merge=[2-2]*".
    std::string to_string() const;
};

/// A fully evaluated candidate: layout + cost-model verdict. `gain` is the
/// expected reduction in program latency contributed by this pipelet
/// (ΔL(G') · P(G')); overheads are the *additional* memory and entry-update
/// bandwidth relative to the unoptimized pipelet (Eq. 5 budget terms).
struct Candidate {
    int pipelet_id = -1;
    CandidateLayout layout;
    double gain = 0.0;
    double memory_cost = 0.0;   ///< extra bytes
    double update_cost = 0.0;   ///< extra entry updates per second
};

}  // namespace pipeleon::opt
