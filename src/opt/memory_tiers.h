// opt/memory_tiers.h — hierarchical-memory placement (§6 "Hierarchical
// memory support"). When a target exposes table placement (CostParams with
// l_mat_fast > 0 and a fast_memory_bytes budget), Pipeleon can host the
// hottest tables in on-chip SRAM. Placement is a knapsack in disguise; the
// classic density greedy (benefit per byte) is within a single table of
// optimal and fast enough to run every profiling round:
//
//   benefit(v) = P(reach v) · traffic_rate · m_v · (L_mat − L_mat_fast)
//   weight(v)  = M(v)   (the Eq. 5 memory estimate)
#pragma once

#include "cost/model.h"
#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::opt {

/// Outcome of a placement pass.
struct TierAssignment {
    ir::Program program;           ///< copy with Table::tier set
    std::size_t tables_in_fast = 0;
    double fast_bytes_used = 0.0;
    /// Predicted expected-latency reduction (cycles) from the placement.
    double predicted_gain = 0.0;
};

/// Greedily assigns tables to the Fast tier within
/// `model.params().fast_memory_bytes`. Returns the input unchanged when the
/// target has no fast tier configured (l_mat_fast <= 0 or budget <= 0).
TierAssignment assign_memory_tiers(const ir::Program& program,
                                   const profile::RuntimeProfile& profile,
                                   const cost::CostModel& model);

}  // namespace pipeleon::opt
