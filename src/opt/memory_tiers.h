// opt/memory_tiers.h — hierarchical-memory placement (§6 "Hierarchical
// memory support"). When a target exposes table placement (CostParams with
// l_mat_fast > 0 and a fast_memory_bytes budget), Pipeleon can host the
// hottest tables in on-chip SRAM. Placement is a knapsack in disguise; the
// classic density greedy (benefit per byte) is within a single table of
// optimal and fast enough to run every profiling round:
//
//   benefit(v) = P(reach v) · traffic_rate · m_v · (L_mat − L_mat_fast)
//   weight(v)  = M(v)   (the Eq. 5 memory estimate)
//
// Three-tier extension (ISSUE 9): targets that also expose NIC-DRAM and
// host-memory budgets (dram_memory_bytes / host_memory_bytes) get two more
// placement stages on top of the fast greedy:
//
//   * table spill — Default-tier tables whose combined footprint exceeds
//     the DRAM budget are demoted to MemTier::Host, coldest benefit-density
//     first, until the remainder fits. A Host table pays l_tier_host extra
//     per probe in the emulator.
//   * cache carve — the DRAM/host bytes left over after table placement are
//     carved into lower-tier *cache* capacities (ir::TierConfig
//     dram_entries / host_entries on each cache table), split across caches
//     by profiled reach probability. The emulator's TieredStore turns those
//     budgets into the SRAM -> DRAM -> host-DMA hierarchy of DESIGN.md §14.
#pragma once

#include "cost/model.h"
#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::opt {

/// Outcome of a placement pass.
struct TierAssignment {
    ir::Program program;           ///< copy with Table::tier / cache tiers set
    std::size_t tables_in_fast = 0;
    double fast_bytes_used = 0.0;
    /// Predicted expected-latency reduction (cycles) from the placement.
    double predicted_gain = 0.0;

    // Three-tier extension (all zero when the target configures no
    // dram/host budgets — the pass is then exactly the legacy fast greedy).
    std::size_t tables_in_host = 0;   ///< tables spilled to host memory
    double dram_bytes_used = 0.0;     ///< Default-tier table footprint
    double host_bytes_used = 0.0;     ///< spilled-table footprint
    std::size_t cache_dram_entries = 0;  ///< carved tier-1 cache capacity
    std::size_t cache_host_entries = 0;  ///< carved tier-2 cache capacity
};

/// Greedily assigns tables to the Fast tier within
/// `model.params().fast_memory_bytes`, spills cold tables to host memory
/// when the DRAM budget overflows, and carves leftover DRAM/host bytes into
/// per-cache lower-tier capacities. Stages whose budgets are unset are
/// skipped; with no fast tier and no dram/host budgets the input comes back
/// unchanged.
TierAssignment assign_memory_tiers(const ir::Program& program,
                                   const profile::RuntimeProfile& profile,
                                   const cost::CostModel& model);

}  // namespace pipeleon::opt
