#include "opt/cache.h"

#include <algorithm>

#include "analysis/dependency.h"
#include "util/strings.h"

namespace pipeleon::opt {

using ir::MatchKey;
using ir::MatchKind;
using ir::Table;

bool cacheable(const std::vector<const Table*>& covered) {
    if (covered.empty()) return false;
    for (const Table* t : covered) {
        if (t == nullptr || t->role != ir::TableRole::Original) return false;
    }
    // No earlier table may write a later table's match key: the cache looks
    // every key field up before any covered action runs.
    for (std::size_t i = 0; i < covered.size(); ++i) {
        for (std::size_t j = i + 1; j < covered.size(); ++j) {
            if (analysis::classify_dependency(*covered[i], *covered[j]) ==
                analysis::DependencyKind::Match) {
                return false;
            }
        }
    }
    return true;
}

Table build_cache_table(const std::vector<const Table*>& covered,
                        const ir::CacheConfig& config, const std::string& name) {
    Table cache;
    cache.role = ir::TableRole::Cache;
    cache.cache = config;
    cache.size = config.capacity;

    std::vector<std::string> names;
    for (const Table* t : covered) {
        names.push_back(t->name);
        cache.origin_tables.push_back(t->name);
        for (const MatchKey& k : t->keys) {
            bool present = std::any_of(
                cache.keys.begin(), cache.keys.end(),
                [&k](const MatchKey& existing) { return existing.field == k.field; });
            if (!present) {
                // Flow caches match exactly on the raw field values.
                cache.keys.push_back(MatchKey{k.field, MatchKind::Exact,
                                              k.width_bits});
            }
        }
    }
    cache.name = name.empty() ? "cache_" + util::join(names, "_") : name;

    ir::Action hit;
    hit.name = "cache_hit";  // replay is performed by the cache engine
    cache.actions.push_back(std::move(hit));
    cache.default_action = -1;  // miss falls through to the covered tables
    return cache;
}

double cache_key_space(const std::vector<double>& covered_entry_counts) {
    double product = 1.0;
    for (double n : covered_entry_counts) product *= std::max(1.0, n);
    return product;
}

}  // namespace pipeleon::opt
