// opt/cache.h — table caching (§3.2.2). A flow cache is a fast exact-match
// table placed in front of one or more covered tables: it records the match
// *result* of the covered tables for a flow and replays it for subsequent
// packets, skipping the complex (LPM/ternary) matches entirely. Pipeleon
// supports an adjustable number of caches, each covering a program region,
// to avoid the cache-key cross-product and whole-cache invalidation problems
// of single-program-cache designs.
#pragma once

#include <string>
#include <vector>

#include "ir/table.h"

namespace pipeleon::opt {

/// True when the given table run can be covered by one flow cache:
/// all Original-role tables, and no earlier table writes a field a later
/// table matches on (the cache key must be readable at cache-lookup time).
bool cacheable(const std::vector<const ir::Table*>& covered);

/// Builds the cache table definition: exact keys = de-duplicated union of
/// the covered tables' key fields, one "hit" action (the emulator replays
/// the recorded per-table actions on a hit; the IR-level action itself
/// carries no primitives), no default action (miss falls through to the
/// covered tables). Role = Cache; origin_tables = covered names.
ir::Table build_cache_table(const std::vector<const ir::Table*>& covered,
                            const ir::CacheConfig& config,
                            const std::string& name = "");

/// The cross-product blowup factor of caching `covered` together: the
/// number of distinct cache keys is up to Π S_i over the covered key
/// fields' value spaces (§3.2.2); as a practical proxy we return the
/// product of the covered tables' live entry counts.
double cache_key_space(const std::vector<double>& covered_entry_counts);

}  // namespace pipeleon::opt
