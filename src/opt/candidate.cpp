#include "opt/candidate.h"

#include "util/strings.h"

namespace pipeleon::opt {

bool CandidateLayout::is_identity() const {
    if (!caches.empty() || !merges.empty()) return false;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] != i) return false;
    }
    return true;
}

bool CandidateLayout::segments_valid(std::size_t n) const {
    std::vector<Segment> all = caches;
    for (const MergeSpec& m : merges) all.push_back(m.seg);
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i].first > all[i].last || all[i].last >= n) return false;
        for (std::size_t j = i + 1; j < all.size(); ++j) {
            if (all[i].overlaps(all[j])) return false;
        }
    }
    return true;
}

std::string CandidateLayout::to_string() const {
    std::string out = "order=[";
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(order[i]);
    }
    out += "]";
    for (const Segment& s : caches) {
        out += util::format(" cache=[%zu-%zu]", s.first, s.last);
    }
    for (const MergeSpec& m : merges) {
        out += util::format(" merge=[%zu-%zu]%s", m.seg.first, m.seg.last,
                            m.as_cache ? "*" : "");
    }
    return out;
}

}  // namespace pipeleon::opt
