#include "opt/plan_io.h"

namespace pipeleon::opt {

PlanFile parse_plan_file(const util::Json& doc) {
    PlanFile file;
    file.max_pipelet_length =
        static_cast<std::size_t>(doc.get_int("max_pipelet_length", 8));
    for (const auto& p : doc.at("plans").as_array()) {
        PipeletPlan plan;
        plan.pipelet_id = static_cast<int>(p.get_int("pipelet_id", -1));
        if (const auto* order = p.find("order")) {
            for (const auto& v : order->as_array()) {
                plan.layout.order.push_back(
                    static_cast<std::size_t>(v.as_int()));
            }
        }
        if (const auto* caches = p.find("caches")) {
            for (const auto& seg : caches->as_array()) {
                plan.layout.caches.push_back(
                    Segment{static_cast<std::size_t>(seg.at(0).as_int()),
                            static_cast<std::size_t>(seg.at(1).as_int())});
            }
        }
        if (const auto* merges = p.find("merges")) {
            for (const auto& m : merges->as_array()) {
                MergeSpec spec;
                spec.seg =
                    Segment{static_cast<std::size_t>(m.at("seg").at(0).as_int()),
                            static_cast<std::size_t>(m.at("seg").at(1).as_int())};
                spec.as_cache = m.get_bool("as_cache", false);
                plan.layout.merges.push_back(spec);
            }
        }
        plan.layout.cache_config.capacity = static_cast<std::size_t>(
            p.get_int("cache_capacity",
                      static_cast<std::int64_t>(
                          plan.layout.cache_config.capacity)));
        file.plans.push_back(std::move(plan));
    }
    return file;
}

PlanFile load_plan_file(const std::string& path) {
    return parse_plan_file(util::load_json_file(path));
}

}  // namespace pipeleon::opt
