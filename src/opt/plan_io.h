// opt/plan_io.h — optimization-plan (de)serialization. A plan file is the
// committed, human-auditable form of a set of PipeletPlans; the lint CLI
// verifies them against a program, and the control-plane tests use committed
// known-bad plan fixtures to force verifier rejections (ISSUE 3).
//
// Schema (JSON):
//   {
//     "max_pipelet_length": 8,          // optional, pipelet formation knob
//     "plans": [
//       { "pipelet_id": 0,
//         "order": [2, 0, 1],           // optional, identity when absent
//         "caches": [[0, 1]],           // [first, last] segments, new order
//         "merges": [ { "seg": [2, 3], "as_cache": true } ],
//         "cache_capacity": 4096 }      // optional CacheConfig override
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "opt/transform.h"
#include "util/json.h"

namespace pipeleon::opt {

/// A parsed plan file: the plans plus the pipelet-formation knob they were
/// authored against (pipelet ids only make sense under the same partition).
struct PlanFile {
    std::size_t max_pipelet_length = 8;
    std::vector<PipeletPlan> plans;
};

/// Parses the schema above from an already-loaded JSON document. Throws
/// util::JsonError (via util::Json accessors) on malformed input.
PlanFile parse_plan_file(const util::Json& doc);

/// Loads and parses a plan file from disk.
PlanFile load_plan_file(const std::string& path);

}  // namespace pipeleon::opt
