// opt/merge.h — table merging (§3.2.3). Merging combines several tables into
// one so that a single key match performs all their actions. A naive merge
// of exact tables must add wildcard rows for the hit/miss cross cases and
// therefore becomes a *ternary* table (Fig 6), potentially with worse match
// cost; the merge-as-cache flavor instead emits an exact table holding only
// the all-hit cross products, with misses falling back to the original
// tables ("Packets missing the cache (the merged table) will fall back to
// the original tables. … it will not initiate entry insertion upon cache
// misses").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/entry.h"
#include "ir/table.h"

namespace pipeleon::opt {

/// Limits protecting against cross-product explosion.
struct MergeLimits {
    std::size_t max_actions = 256;   ///< merged action cross-product cap
    std::size_t max_entries = 1u << 20;  ///< merged entry cross-product cap
};

/// True when the tables can legally be merged: pairwise independent
/// (checked by the caller via analysis::independent), action names free of
/// the '+' separator, and — for full merges — default actions without
/// runtime arguments (a wildcard row cannot supply action data).
/// `as_cache` additionally requires every source key to be exact.
bool mergeable(const std::vector<const ir::Table*>& sources, bool as_cache);

/// Builds the merged table definition: concatenated keys (ternary for full
/// merges, exact for merge-as-cache), cross-product actions named
/// "aA+aB+...", role Merged or MergedCache. Returns nullopt when `sources`
/// violate `mergeable` or the action cross product exceeds limits.
std::optional<ir::Table> build_merged_table(
    const std::vector<const ir::Table*>& sources, bool as_cache,
    const std::string& name = "", const MergeLimits& limits = {});

/// Materializes merged entries from the sources' entry lists.
/// Full merge: cross product over (entries ∪ miss) per table, skipping the
/// all-miss combo only when the merged table's default action covers it;
/// each row's priority is its number of hit components. Merge-as-cache:
/// all-hit combos only, with exact keys. Returns nullopt when the product
/// exceeds limits.
std::optional<std::vector<ir::TableEntry>> build_merged_entries(
    const std::vector<const ir::Table*>& sources,
    const std::vector<std::vector<ir::TableEntry>>& source_entries,
    const ir::Table& merged, bool as_cache, const MergeLimits& limits = {});

/// The worst-case merged entry count N(T_AB) = Π N(T_k) (§3.2.3).
double estimated_merged_entries(const std::vector<double>& source_entry_counts);

/// The amplified entry update rate
/// I(T_AB) = Σ_k I_k · Π_{j≠k} N_j (§3.2.3).
double estimated_merged_update_rate(const std::vector<double>& source_entry_counts,
                                    const std::vector<double>& source_update_rates);

/// Number of runtime arguments an action consumes (max arg_index + 1).
int action_arg_count(const ir::Action& action);

}  // namespace pipeleon::opt
