// analysis/pipelet.h — pipelet formation and hot-pipelet detection (§4.1).
// A pipelet is "a piece of P4 code without control flow branches, akin to a
// basic block … composed of only MA tables". The program is partitioned at
// conditional branches and switch-case tables; a switch-case table forms its
// own pipelet. Long pipelets are split (configurable maximum), and
// neighboring short pipelets around a common branch can form a pipelet
// group for joint optimization.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "profile/profile.h"

namespace pipeleon::analysis {

/// A straight-line run of table nodes. `nodes` is in execution order; every
/// node except possibly the last flows uniformly into its successor.
struct Pipelet {
    int id = -1;
    std::vector<ir::NodeId> nodes;
    /// Node the pipelet's traffic continues to after the last table
    /// (kNoNode = pipeline exit; a branch or another pipelet's head
    /// otherwise). Switch-case pipelets have multiple exits and leave this
    /// as kNoNode.
    ir::NodeId exit = ir::kNoNode;
    /// True when this pipelet is a single switch-case table.
    bool is_switch_case = false;

    ir::NodeId entry() const { return nodes.empty() ? ir::kNoNode : nodes.front(); }
    std::size_t length() const { return nodes.size(); }
};

/// Partitioning knobs.
struct PipeletOptions {
    /// Pipelets longer than this are split ("Pipeleon further partitions
    /// large pipelets into smaller ones"). 0 disables splitting.
    std::size_t max_length = 8;
};

/// Partitions the reachable program into pipelets. Branch nodes belong to no
/// pipelet. Deterministic: pipelets are numbered in topological order of
/// their entry nodes.
std::vector<Pipelet> form_pipelets(const ir::Program& program,
                                   const PipeletOptions& options = {});

/// A pipelet group (§4.1.1): neighboring pipelets around one branch where a
/// single node receives all incoming traffic and all traffic leaves to the
/// same node. We realize the diamond shape: an optional preceding pipelet,
/// the branch, its two arm pipelets, and the join pipelet. Joint
/// optimization may move branch-independent tables between `pre` and `post`.
struct PipeletGroup {
    ir::NodeId branch = ir::kNoNode;
    int pre = -1;    ///< pipelet id flowing into the branch (-1 if none)
    int arm_true = -1;
    int arm_false = -1;
    int post = -1;   ///< pipelet id both arms join into (-1 if none)
};

/// Finds all diamond pipelet groups in the program given its pipelets.
std::vector<PipeletGroup> find_pipelet_groups(const ir::Program& program,
                                              const std::vector<Pipelet>& pipelets);

/// A pipelet scored by the cost model: latency L(G') weighted by reach
/// probability P(G') (§4.1.2).
struct ScoredPipelet {
    int pipelet_id = -1;
    double weighted_latency = 0.0;  ///< L(G') * P(G')
    double reach_probability = 0.0;
};

/// Selects the top-k hot pipelets by weighted latency. `k_fraction` in
/// (0, 1]; at least one pipelet is returned when any exist. `latency_fn`
/// supplies L(G') for a pipelet (the cost module provides it; analysis
/// stays independent of the cost model's parameterization).
std::vector<ScoredPipelet> top_k_pipelets(
    const ir::Program& program, const std::vector<Pipelet>& pipelets,
    const profile::RuntimeProfile& profile, double k_fraction,
    const std::function<double(const Pipelet&)>& latency_fn);

}  // namespace pipeleon::analysis
