#include "analysis/dependency.h"

#include <algorithm>
#include <functional>

namespace pipeleon::analysis {

FieldSets field_sets(const ir::Table& table) {
    FieldSets fs;
    for (const ir::MatchKey& k : table.keys) fs.reads.insert(k.field);
    for (const ir::Action& a : table.actions) {
        for (const std::string& f : a.read_fields()) fs.reads.insert(f);
        for (const std::string& f : a.written_fields()) fs.writes.insert(f);
    }
    return fs;
}

const char* to_string(DependencyKind kind) {
    switch (kind) {
        case DependencyKind::None: return "none";
        case DependencyKind::Match: return "match";
        case DependencyKind::Action: return "action";
        case DependencyKind::Write: return "write";
    }
    return "?";
}

namespace {

bool intersects(const std::set<std::string>& a, const std::set<std::string>& b) {
    // Iterate the smaller set.
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    for (const std::string& s : small) {
        if (large.count(s) != 0) return true;
    }
    return false;
}

}  // namespace

DependencyKind classify_dependency(const ir::Table& earlier,
                                   const ir::Table& later) {
    FieldSets e = field_sets(earlier);
    FieldSets l = field_sets(later);
    std::set<std::string> later_keys;
    for (const ir::MatchKey& k : later.keys) later_keys.insert(k.field);
    if (intersects(e.writes, later_keys)) return DependencyKind::Match;
    if (intersects(e.writes, l.reads)) return DependencyKind::Action;
    if (intersects(e.writes, l.writes)) return DependencyKind::Write;
    return DependencyKind::None;
}

bool independent(const ir::Table& a, const ir::Table& b) {
    return classify_dependency(a, b) == DependencyKind::None &&
           classify_dependency(b, a) == DependencyKind::None;
}

DependencyGraph::DependencyGraph(const std::vector<ir::Table>& tables)
    : n_(tables.size()), dep_(tables.size() * tables.size(), false) {
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            bool d = !independent(tables[i], tables[j]);
            dep_[i * n_ + j] = d;
            dep_[j * n_ + i] = d;
        }
    }
}

bool DependencyGraph::dependent(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_ || i == j) return false;
    return dep_at(i, j);
}

bool DependencyGraph::order_is_valid(const std::vector<std::size_t>& order) const {
    if (order.size() != n_) return false;
    for (std::size_t x = 0; x < order.size(); ++x) {
        for (std::size_t y = x + 1; y < order.size(); ++y) {
            // Dependent pairs must keep their original relative order:
            // original position numbers are the dependency direction.
            if (dep_at(order[x], order[y]) && order[x] > order[y]) return false;
        }
    }
    return true;
}

bool DependencyGraph::can_group(const std::vector<std::size_t>& positions) const {
    // The group can be made contiguous iff no external table k is forced to
    // sit between two group members: dep(a -> k) and dep(k -> b) with
    // a, b in the group and a < k < b in original order.
    for (std::size_t k = 0; k < n_; ++k) {
        if (std::find(positions.begin(), positions.end(), k) != positions.end()) {
            continue;
        }
        bool before = false;  // some group member a < k depends into k
        bool after = false;   // some group member b > k depends from k
        for (std::size_t p : positions) {
            if (p < k && dep_at(p, k)) before = true;
            if (p > k && dep_at(k, p)) after = true;
        }
        if (before && after) return false;
    }
    return true;
}

std::vector<std::vector<std::size_t>> DependencyGraph::valid_orders(
    std::size_t limit) const {
    std::vector<std::vector<std::size_t>> results;
    std::vector<std::size_t> current;
    std::vector<bool> used(n_, false);

    // Backtracking over permutations; a position p may be placed next only
    // when every unplaced q with dep(q -> p) (q < p) has been placed.
    auto may_place = [&](std::size_t p) {
        for (std::size_t q = 0; q < p; ++q) {
            if (!used[q] && dep_at(q, p)) return false;
        }
        return true;
    };

    std::function<void()> recurse = [&]() {
        if (results.size() >= limit) return;
        if (current.size() == n_) {
            results.push_back(current);
            return;
        }
        for (std::size_t p = 0; p < n_; ++p) {
            if (used[p] || !may_place(p)) continue;
            used[p] = true;
            current.push_back(p);
            recurse();
            current.pop_back();
            used[p] = false;
            if (results.size() >= limit) return;
        }
    };
    recurse();
    return results;
}

}  // namespace pipeleon::analysis
