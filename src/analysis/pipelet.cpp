#include "analysis/pipelet.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace pipeleon::analysis {

using ir::kNoNode;
using ir::Node;
using ir::NodeId;
using ir::Program;

std::vector<Pipelet> form_pipelets(const Program& program,
                                   const PipeletOptions& options) {
    std::vector<Pipelet> pipelets;
    if (program.root() == kNoNode) return pipelets;

    auto preds = program.predecessors();
    std::vector<NodeId> topo = program.topo_order();

    auto is_chain_head = [&](const Node& n) {
        if (!n.is_table()) return false;
        if (n.id == program.root()) return true;
        const auto& p = preds[static_cast<std::size_t>(n.id)];
        if (p.size() != 1) return true;
        const Node& pred = program.node(p[0]);
        if (pred.is_branch()) return true;
        if (pred.is_switch_case()) return true;
        return false;
    };

    std::vector<bool> consumed(program.node_count(), false);
    for (NodeId id : topo) {
        const Node& n = program.node(id);
        if (!n.is_table() || consumed[static_cast<std::size_t>(id)]) continue;
        if (!is_chain_head(n)) continue;

        // A switch-case table is its own pipelet (§4.1.1).
        if (n.is_switch_case()) {
            Pipelet p;
            p.nodes = {id};
            p.is_switch_case = true;
            consumed[static_cast<std::size_t>(id)] = true;
            pipelets.push_back(std::move(p));
            continue;
        }

        Pipelet p;
        NodeId cur = id;
        while (true) {
            consumed[static_cast<std::size_t>(cur)] = true;
            p.nodes.push_back(cur);
            const Node& node = program.node(cur);
            NodeId next = node.next_for_miss();  // uniform: any edge works
            if (!node.next_by_action.empty()) next = node.next_by_action[0];
            if (next == kNoNode) {
                p.exit = kNoNode;
                break;
            }
            const Node& nn = program.node(next);
            if (!nn.is_table() || nn.is_switch_case() ||
                preds[static_cast<std::size_t>(next)].size() != 1 ||
                consumed[static_cast<std::size_t>(next)]) {
                p.exit = next;
                break;
            }
            cur = next;
        }
        pipelets.push_back(std::move(p));
    }

    // Pick up any remaining unconsumed tables (defensive: graphs where a
    // chain interior is also reachable some other way are handled above via
    // the predecessor count, but keep the pass total).
    for (NodeId id : topo) {
        const Node& n = program.node(id);
        if (!n.is_table() || consumed[static_cast<std::size_t>(id)]) continue;
        Pipelet p;
        p.nodes = {id};
        p.is_switch_case = n.is_switch_case();
        if (!p.is_switch_case) {
            p.exit = n.next_by_action.empty() ? n.next_for_miss()
                                              : n.next_by_action[0];
        }
        consumed[static_cast<std::size_t>(id)] = true;
        pipelets.push_back(std::move(p));
    }

    // Split long pipelets.
    if (options.max_length > 0) {
        std::vector<Pipelet> split;
        for (Pipelet& p : pipelets) {
            if (p.is_switch_case || p.nodes.size() <= options.max_length) {
                split.push_back(std::move(p));
                continue;
            }
            for (std::size_t off = 0; off < p.nodes.size();
                 off += options.max_length) {
                Pipelet part;
                std::size_t end = std::min(off + options.max_length, p.nodes.size());
                part.nodes.assign(p.nodes.begin() + static_cast<std::ptrdiff_t>(off),
                                  p.nodes.begin() + static_cast<std::ptrdiff_t>(end));
                part.exit = end < p.nodes.size() ? p.nodes[end] : p.exit;
                split.push_back(std::move(part));
            }
        }
        pipelets = std::move(split);
    }

    for (std::size_t i = 0; i < pipelets.size(); ++i) {
        pipelets[i].id = static_cast<int>(i);
    }
    return pipelets;
}

std::vector<PipeletGroup> find_pipelet_groups(const Program& program,
                                              const std::vector<Pipelet>& pipelets) {
    std::vector<PipeletGroup> groups;

    auto pipelet_of = [&pipelets](NodeId node) -> int {
        for (const Pipelet& p : pipelets) {
            if (std::find(p.nodes.begin(), p.nodes.end(), node) != p.nodes.end()) {
                return p.id;
            }
        }
        return -1;
    };
    auto pipelet_entry_of = [&pipelets](NodeId node) -> int {
        for (const Pipelet& p : pipelets) {
            if (p.entry() == node) return p.id;
        }
        return -1;
    };

    for (NodeId id : program.reachable()) {
        const Node& n = program.node(id);
        if (!n.is_branch()) continue;
        PipeletGroup g;
        g.branch = id;

        // Arms: both successors must be pipelet entries (not other branches).
        g.arm_true = pipelet_entry_of(n.true_next);
        g.arm_false = pipelet_entry_of(n.false_next);
        if (g.arm_true < 0 || g.arm_false < 0 || g.arm_true == g.arm_false) {
            continue;
        }
        const Pipelet& at = pipelets[static_cast<std::size_t>(g.arm_true)];
        const Pipelet& af = pipelets[static_cast<std::size_t>(g.arm_false)];
        if (at.is_switch_case || af.is_switch_case) continue;

        // Join: both arms must exit to the same node (possibly the sink).
        if (at.exit != af.exit) continue;
        g.post = at.exit == kNoNode ? -1 : pipelet_entry_of(at.exit);

        // Pre: the pipelet whose exit is this branch, if any.
        for (const Pipelet& p : pipelets) {
            if (!p.is_switch_case && p.exit == id) {
                g.pre = p.id;
                break;
            }
        }
        if (g.pre < 0 && g.post < 0) continue;  // nothing to jointly optimize
        groups.push_back(g);
    }
    (void)pipelet_of;
    return groups;
}

std::vector<ScoredPipelet> top_k_pipelets(
    const Program& program, const std::vector<Pipelet>& pipelets,
    const profile::RuntimeProfile& profile, double k_fraction,
    const std::function<double(const Pipelet&)>& latency_fn) {
    std::vector<double> reach = profile.reach_probabilities(program);

    std::vector<ScoredPipelet> scored;
    scored.reserve(pipelets.size());
    for (const Pipelet& p : pipelets) {
        ScoredPipelet s;
        s.pipelet_id = p.id;
        s.reach_probability =
            p.entry() == kNoNode ? 0.0 : reach[static_cast<std::size_t>(p.entry())];
        s.weighted_latency = latency_fn(p) * s.reach_probability;
        scored.push_back(s);
    }
    std::sort(scored.begin(), scored.end(),
              [](const ScoredPipelet& a, const ScoredPipelet& b) {
                  if (a.weighted_latency != b.weighted_latency) {
                      return a.weighted_latency > b.weighted_latency;
                  }
                  return a.pipelet_id < b.pipelet_id;
              });
    if (scored.empty()) return scored;
    double kf = std::clamp(k_fraction, 0.0, 1.0);
    std::size_t k = static_cast<std::size_t>(
        std::ceil(kf * static_cast<double>(scored.size())));
    k = std::max<std::size_t>(1, std::min(k, scored.size()));
    scored.resize(k);
    return scored;
}

}  // namespace pipeleon::analysis
