// analysis/dependency.h — table dependency analysis. Pipeleon's
// transformations "preserve the program semantics by table dependency
// analysis [34]" (§3.2). Following the classic match-action dependency
// taxonomy (Jose et al., NSDI'15), two tables conflict when one writes a
// field the other matches on (match dependency), writes a field the other's
// actions read (action dependency), or both write the same field (write
// dependency). Independent tables may be freely reordered, merged, or cached
// together.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/program.h"

namespace pipeleon::analysis {

/// Field-level read/write footprint of a table.
struct FieldSets {
    std::set<std::string> reads;   ///< match-key fields + action-read fields
    std::set<std::string> writes;  ///< action-written fields
};

/// Computes the footprint of a table (all actions considered, since any may
/// execute at runtime).
FieldSets field_sets(const ir::Table& table);

/// The kind of dependency found between an earlier and a later table.
enum class DependencyKind {
    None,
    Match,   ///< earlier writes a field the later matches on
    Action,  ///< earlier writes a field the later's actions read
    Write    ///< both write the same field
};

const char* to_string(DependencyKind kind);

/// Classifies the dependency of `later` on `earlier`; returns the strongest
/// kind found (Match > Action > Write > None).
DependencyKind classify_dependency(const ir::Table& earlier,
                                   const ir::Table& later);

/// True when the two tables have no dependency in either direction, i.e.
/// they commute and may be reordered/merged/cached jointly.
bool independent(const ir::Table& a, const ir::Table& b);

/// Pairwise dependency structure over an ordered table sequence (a pipelet).
/// Index i refers to the i-th table of the sequence given at construction.
class DependencyGraph {
public:
    explicit DependencyGraph(const std::vector<ir::Table>& tables);

    std::size_t size() const { return n_; }

    /// True when tables at positions i and j (any order) are dependent.
    bool dependent(std::size_t i, std::size_t j) const;

    /// True when the permutation `order` (a sequence of positions) preserves
    /// the relative order of every dependent pair.
    bool order_is_valid(const std::vector<std::size_t>& order) const;

    /// True when positions [first, last] may be placed adjacently in some
    /// valid order and treated as a unit (required for merging/caching a
    /// contiguous run after reordering).
    bool can_group(const std::vector<std::size_t>& positions) const;

    /// All dependency-respecting permutations, capped at `limit` results
    /// (the search bounds enumeration; §4's naive-solution discussion).
    std::vector<std::vector<std::size_t>> valid_orders(std::size_t limit) const;

private:
    std::size_t n_;
    std::vector<bool> dep_;  // n*n symmetric matrix

    bool dep_at(std::size_t i, std::size_t j) const { return dep_[i * n_ + j]; }
};

}  // namespace pipeleon::analysis
