#include "analysis/verify.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

#include "analysis/dependency.h"
#include "util/strings.h"

namespace pipeleon::analysis {

using ir::kNoNode;
using ir::Node;
using ir::NodeId;
using ir::Program;
using ir::TableRole;

namespace {

bool id_in_range(const Program& p, NodeId id) {
    return id >= 0 && static_cast<std::size_t>(id) < p.node_count();
}

bool is_context_role(TableRole role) {
    return role == TableRole::Navigation || role == TableRole::Migration;
}

bool is_cache_role(TableRole role) {
    return role == TableRole::Cache || role == TableRole::MergedCache;
}

/// The unique successor of a straight-line node; kNoNode for exits,
/// nullopt when the node fans out.
std::optional<NodeId> uniform_successor(const Node& n) {
    std::vector<NodeId> succ = n.successors();
    if (succ.empty()) return kNoNode;
    if (succ.size() == 1) return succ[0];
    return std::nullopt;
}

/// Follows Navigation/Migration context tables (core-partition plumbing,
/// §3.2.4) to the node that does real work; they are transparent to the
/// cache-cover and path-preservation checks.
NodeId resolve_through_context(const Program& p, NodeId id) {
    std::size_t guard = p.node_count() + 1;
    while (id != kNoNode && guard-- > 0) {
        const Node& n = p.node(id);
        if (!n.is_table() || !is_context_role(n.table.role)) return id;
        std::optional<NodeId> next = uniform_successor(n);
        if (!next.has_value()) return id;
        id = *next;
    }
    return id;
}

int action_args_needed(const ir::Action& action) {
    int needed = 0;
    for (const ir::Primitive& prim : action.primitives) {
        needed = std::max(needed, prim.arg_index + 1);
    }
    return needed;
}

/// Inserts `names` into the sorted, de-duplicated vector `dest`.
void merge_names(std::vector<std::string>& dest,
                 const std::vector<std::string>& names) {
    for (const std::string& name : names) {
        auto it = std::lower_bound(dest.begin(), dest.end(), name);
        if (it == dest.end() || *it != name) dest.insert(it, name);
    }
}

std::string name_set_to_string(const std::vector<std::string>& names) {
    std::string out = "{";
    out += util::join(names, ",");
    out += '}';
    return out;
}

}  // namespace

DiagnosticList Verifier::check_program(const Program& program) const {
    DiagnosticList d;
    if (program.node_count() == 0) {
        d.error("structure.empty", kNoNode, "program has no nodes");
        return d;
    }
    bool root_ok = id_in_range(program, program.root());
    if (!root_ok) {
        d.error("structure.root", kNoNode,
                "root " + std::to_string(program.root()) +
                    " does not name a live node");
    }

    bool edges_ok = true;
    std::set<std::string> names;
    for (std::size_t idx = 0; idx < program.node_count(); ++idx) {
        const Node& n = program.nodes()[idx];
        if (n.id != static_cast<NodeId>(idx)) {
            d.error("structure.node-id", static_cast<NodeId>(idx),
                    util::format("node at index %zu carries id %d", idx,
                                 n.id));
        }
        auto check_edge = [&](NodeId target, const char* what) {
            if (target != kNoNode && !id_in_range(program, target)) {
                d.error("structure.edge-target", n.id,
                        util::format("%s points at dead node %d", what, target));
                edges_ok = false;
            } else if (target == n.id) {
                d.error("structure.self-loop", n.id,
                        util::format("%s forms a self-loop", what));
                edges_ok = false;
            }
        };
        if (n.is_table()) {
            const ir::Table& t = n.table;
            if (t.name.empty()) {
                d.error("structure.table.name", n.id, "table has an empty name");
            } else if (!names.insert(t.name).second) {
                d.error("structure.table.name", n.id,
                        "duplicate table name '" + t.name + "'");
            }
            if (t.actions.empty()) {
                d.error("structure.table.actions", n.id,
                        "table '" + t.name + "' has no actions");
            }
            if (t.keys.empty()) {
                d.error("structure.table.keys", n.id,
                        "table '" + t.name + "' has no match keys");
            }
            if (n.next_by_action.size() != t.actions.size()) {
                d.error("structure.table.arity", n.id,
                        util::format(
                            "table '%s' has %zu actions but %zu action edges",
                            t.name.c_str(), t.actions.size(),
                            n.next_by_action.size()));
            }
            if (t.default_action >= 0 &&
                static_cast<std::size_t>(t.default_action) >= t.actions.size()) {
                d.error("structure.table.default-action", n.id,
                        util::format("table '%s' default action %d out of range",
                                     t.name.c_str(), t.default_action));
            }
            for (NodeId e : n.next_by_action) check_edge(e, "action edge");
            check_edge(n.miss_next, "miss edge");
        } else {
            if (n.cond.field.empty()) {
                d.error("structure.branch.cond", n.id,
                        "branch has an empty condition field");
            }
            check_edge(n.true_next, "true edge");
            check_edge(n.false_next, "false edge");
            if (n.true_next == kNoNode && n.false_next == kNoNode) {
                d.warning("structure.branch.degenerate", n.id,
                          "branch has no live arm (both exits leave the "
                          "pipeline)");
            }
        }
    }
    // Traversal-dependent checks need sane edges and a live root.
    if (!edges_ok || !root_ok) return d;

    // Reachability + cycle detection via iterative three-color DFS.
    std::vector<std::uint8_t> color(program.node_count(), 0);  // 0/1/2
    struct Frame {
        NodeId id;
        std::vector<NodeId> succ;
        std::size_t next = 0;
    };
    std::vector<Frame> stack;
    bool cyclic = false;
    color[static_cast<std::size_t>(program.root())] = 1;
    stack.push_back({program.root(), program.node(program.root()).successors()});
    while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next >= f.succ.size()) {
            color[static_cast<std::size_t>(f.id)] = 2;
            stack.pop_back();
            continue;
        }
        NodeId s = f.succ[f.next++];
        if (s == kNoNode) continue;
        std::uint8_t c = color[static_cast<std::size_t>(s)];
        if (c == 1) {
            if (!cyclic) {
                d.error("structure.cycle", s,
                        util::format("cycle through node %d", s));
            }
            cyclic = true;
        } else if (c == 0) {
            color[static_cast<std::size_t>(s)] = 1;
            stack.push_back({s, program.node(s).successors()});
        }
    }
    if (options_.warn_unreachable) {
        for (std::size_t idx = 0; idx < program.node_count(); ++idx) {
            if (color[idx] == 0) {
                d.warning("structure.unreachable", static_cast<NodeId>(idx),
                          "node is not reachable from the root");
            }
        }
    }
    if (cyclic) return d;  // chain walks below assume a DAG

    // Cache nodes must front a contiguous run of their covered tables: the
    // miss edge enters the originals in origin_tables order, and the run
    // rejoins the cache's hit successor (opt/cache.h, §3.2.2).
    for (std::size_t idx = 0; idx < program.node_count(); ++idx) {
        const Node& n = program.nodes()[idx];
        if (color[idx] == 0 || !n.is_table() || !is_cache_role(n.table.role)) {
            continue;
        }
        const ir::Table& t = n.table;
        if (t.origin_tables.empty()) {
            d.error("structure.cache.cover", n.id,
                    "cache table '" + t.name + "' records no covered tables");
            continue;
        }
        if (t.default_action >= 0) {
            d.error("structure.cache.cover", n.id,
                    "cache table '" + t.name +
                        "' must fall back to its covered tables on a miss "
                        "(default_action must be -1)");
            continue;
        }
        NodeId hit = kNoNode;
        bool hit_uniform = true;
        for (std::size_t a = 0; a < n.next_by_action.size(); ++a) {
            if (a == 0) hit = n.next_by_action[a];
            else if (n.next_by_action[a] != hit) hit_uniform = false;
        }
        if (!hit_uniform) {
            d.error("structure.cache.cover", n.id,
                    "cache table '" + t.name + "' hit edges disagree");
            continue;
        }
        bool ok = true;
        NodeId cur = resolve_through_context(program, n.miss_next);
        for (const std::string& covered : t.origin_tables) {
            if (cur == kNoNode || !program.node(cur).is_table() ||
                program.node(cur).table.name != covered) {
                d.error("structure.cache.cover", n.id,
                        "cache table '" + t.name +
                            "' miss chain does not cover '" + covered + "'");
                ok = false;
                break;
            }
            std::optional<NodeId> next = uniform_successor(program.node(cur));
            if (!next.has_value()) {
                d.error("structure.cache.cover", cur,
                        "covered table '" + covered +
                            "' fans out inside the cached run");
                ok = false;
                break;
            }
            cur = resolve_through_context(program, *next);
        }
        if (ok && cur != resolve_through_context(program, hit)) {
            d.error("structure.cache.cover", n.id,
                    "cache table '" + t.name +
                        "' covered run does not rejoin the hit successor");
        }
    }

    // Core-partition legality (§3.2.4): once a program carries context
    // tables, every core-crossing edge must be a Migration -> Navigation
    // handoff — a bare crossing would execute a node on a core the packet
    // never migrated to.
    bool instrumented = false;
    for (std::size_t idx = 0; idx < program.node_count(); ++idx) {
        const Node& n = program.nodes()[idx];
        if (color[idx] != 0 && n.is_table() && is_context_role(n.table.role)) {
            instrumented = true;
            break;
        }
    }
    if (instrumented) {
        for (std::size_t idx = 0; idx < program.node_count(); ++idx) {
            const Node& n = program.nodes()[idx];
            if (color[idx] == 0) continue;
            for (NodeId s : n.successors()) {
                if (s == kNoNode) continue;
                const Node& sn = program.node(s);
                if (sn.core == n.core) continue;
                bool paired = n.is_table() &&
                              n.table.role == TableRole::Migration &&
                              sn.is_table() &&
                              sn.table.role == TableRole::Navigation;
                if (!paired) {
                    d.error("structure.core-crossing", n.id,
                            util::format(
                                "edge %d -> %d crosses %s -> %s cores without "
                                "a migration/navigation pair",
                                n.id, s, ir::to_string(n.core),
                                ir::to_string(sn.core)));
                }
            }
        }
    }
    return d;
}

DiagnosticList Verifier::check_entries(
    const ir::Table& table, const std::vector<ir::TableEntry>& entries) const {
    DiagnosticList d;
    std::vector<int> args_needed;
    args_needed.reserve(table.actions.size());
    for (const ir::Action& a : table.actions) {
        args_needed.push_back(action_args_needed(a));
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const ir::TableEntry& e = entries[i];
        if (e.key.size() != table.keys.size()) {
            d.error("entry.key-arity", kNoNode,
                    util::format("entry %zu of '%s' has %zu key components, "
                                 "table declares %zu",
                                 i, table.name.c_str(), e.key.size(),
                                 table.keys.size()));
        } else if (!e.compatible_with(table)) {
            d.error("entry.key-kind", kNoNode,
                    util::format("entry %zu of '%s' uses match kinds "
                                 "incompatible with the table's keys",
                                 i, table.name.c_str()));
        }
        if (e.action_index < 0 ||
            static_cast<std::size_t>(e.action_index) >= table.actions.size()) {
            d.error("entry.action-id", kNoNode,
                    util::format("entry %zu of '%s' selects action %d of %zu",
                                 i, table.name.c_str(), e.action_index,
                                 table.actions.size()));
        } else if (static_cast<int>(e.action_data.size()) <
                   args_needed[static_cast<std::size_t>(e.action_index)]) {
            d.error("entry.action-data", kNoNode,
                    util::format("entry %zu of '%s' supplies %zu action-data "
                                 "words, action '%s' consumes %d",
                                 i, table.name.c_str(), e.action_data.size(),
                                 table.actions[static_cast<std::size_t>(
                                                   e.action_index)]
                                     .name.c_str(),
                                 args_needed[static_cast<std::size_t>(
                                     e.action_index)]));
        }
    }
    return d;
}

DiagnosticList Verifier::check_entry_remap(
    const ir::Program& original,
    const std::unordered_map<std::string, std::vector<ir::TableEntry>>&
        original_store,
    const ir::Program& deployed,
    const std::vector<ir::EntryLoad>& loads) const {
    DiagnosticList d;

    std::unordered_map<std::string, const ir::Table*> deployed_tables;
    for (const ir::Node& n : deployed.nodes()) {
        if (n.is_table()) deployed_tables.emplace(n.table.name, &n.table);
    }

    std::unordered_set<std::string> loaded;
    for (const ir::EntryLoad& load : loads) {
        auto it = deployed_tables.find(load.table);
        if (it == deployed_tables.end()) {
            d.error("entry.remap.unknown-table", kNoNode,
                    util::format("load addresses '%s', which the deployed "
                                 "program does not define",
                                 load.table.c_str()));
            continue;
        }
        const ir::Table& t = *it->second;
        if (t.role == TableRole::Cache) {
            d.error("entry.remap.role", kNoNode,
                    util::format("load addresses flow cache '%s'; caches "
                                 "learn entries from misses, they are never "
                                 "loaded by the control plane",
                                 load.table.c_str()));
            continue;
        }
        if (!loaded.insert(load.table).second) {
            d.error("entry.remap.duplicate-load", kNoNode,
                    util::format("'%s' is addressed by more than one load; "
                                 "the later one would clobber the earlier",
                                 load.table.c_str()));
            continue;
        }
        d.merge(check_entries(t, load.entries));
        if (t.role == TableRole::Original) {
            auto s = original_store.find(t.name);
            const std::size_t expected =
                s == original_store.end() ? 0 : s->second.size();
            if (load.entries.size() != expected) {
                d.error("entry.remap.count", kNoNode,
                        util::format("direct table '%s' load carries %zu "
                                     "entries, original store holds %zu",
                                     t.name.c_str(), load.entries.size(),
                                     expected));
            }
        }
    }

    // Coverage: merged tables always need their rebuilt cross product, and
    // a direct table with live original entries needs its load too.
    for (const auto& [name, t] : deployed_tables) {
        if (loaded.count(name) != 0) continue;
        if (t->role == TableRole::Merged || t->role == TableRole::MergedCache) {
            d.error("entry.remap.missing-load", kNoNode,
                    util::format("merged table '%s' receives no entry load; "
                                 "it would deploy empty and miss every packet",
                                 name.c_str()));
        } else if (t->role == TableRole::Original) {
            auto s = original_store.find(name);
            if (s != original_store.end() && !s->second.empty()) {
                d.error("entry.remap.missing-load", kNoNode,
                        util::format("direct table '%s' receives no entry "
                                     "load; the original store holds %zu "
                                     "entries for it",
                                     name.c_str(), s->second.size()));
            }
        }
    }

    // No original table's entries may be silently discarded: each original
    // table with live entries must be implemented by a loaded direct table
    // of the same name or a loaded merged table whose origin set covers it.
    for (const ir::Node& n : original.nodes()) {
        if (!n.is_table()) continue;
        auto s = original_store.find(n.table.name);
        if (s == original_store.end() || s->second.empty()) continue;
        bool implemented = loaded.count(n.table.name) != 0;
        if (!implemented) {
            for (const ir::EntryLoad& load : loads) {
                auto it = deployed_tables.find(load.table);
                if (it == deployed_tables.end()) continue;
                const auto& origins = it->second->origin_tables;
                if ((it->second->role == TableRole::Merged ||
                     it->second->role == TableRole::MergedCache) &&
                    std::find(origins.begin(), origins.end(), n.table.name) !=
                        origins.end()) {
                    implemented = true;
                    break;
                }
            }
        }
        if (!implemented) {
            d.error("entry.remap.dropped", kNoNode,
                    util::format("original table '%s' holds %zu entries but "
                                 "no load implements it in the new layout",
                                 n.table.name.c_str(), s->second.size()));
        }
    }
    return d;
}

bool Verifier::canonical_path_sets(
    const Program& program, std::vector<std::vector<std::string>>& sets) const {
    sets.clear();
    std::vector<NodeId> topo;
    try {
        topo = program.topo_order();
    } catch (const std::exception&) {
        return false;  // cyclic or malformed: nothing to enumerate
    }
    using NameSet = std::vector<std::string>;  // sorted, unique
    std::map<NodeId, std::set<NameSet>> memo;
    const std::set<NameSet> base{{}};
    static const std::vector<std::string> kEmptyNames;

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        NodeId id = *it;
        const Node& n = program.node(id);

        // Canonical contribution per edge class: original tables count as
        // themselves; cache/merged tables expand to their covered originals
        // (on the edges whose traversal executes the covered actions);
        // navigation/migration context tables and branches contribute
        // nothing.
        const std::vector<std::string>* hit_contrib = &kEmptyNames;
        const std::vector<std::string>* miss_contrib = &kEmptyNames;
        std::vector<std::string> own;
        if (n.is_table()) {
            switch (n.table.role) {
                case TableRole::Original:
                    own.push_back(n.table.name);
                    hit_contrib = miss_contrib = &own;
                    break;
                case TableRole::Cache:
                case TableRole::MergedCache:
                    // A hit replays the covered tables' actions; a miss falls
                    // through to the originals, which contribute themselves.
                    hit_contrib = &n.table.origin_tables;
                    break;
                case TableRole::Merged:
                    hit_contrib = miss_contrib = &n.table.origin_tables;
                    break;
                case TableRole::Navigation:
                case TableRole::Migration:
                    break;
            }
        }

        // Distinct (target, contribution) edges.
        std::set<std::pair<NodeId, bool>> edges;  // bool: uses hit contribution
        if (n.is_branch()) {
            edges.insert({n.true_next, true});
            edges.insert({n.false_next, true});
        } else {
            for (NodeId t : n.next_by_action) edges.insert({t, true});
            edges.insert({n.next_for_miss(), hit_contrib == miss_contrib});
        }

        std::set<NameSet> out;
        for (const auto& [target, uses_hit] : edges) {
            const std::vector<std::string>& contrib =
                n.is_branch() ? kEmptyNames
                              : (uses_hit ? *hit_contrib : *miss_contrib);
            const std::set<NameSet>& from =
                target == kNoNode ? base : memo[target];
            for (const NameSet& s : from) {
                NameSet combined = s;
                merge_names(combined, contrib);
                out.insert(std::move(combined));
                if (out.size() > options_.max_path_sets) return false;
            }
        }
        memo[id] = std::move(out);
    }
    const std::set<NameSet>& at_root = memo[program.root()];
    sets.assign(at_root.begin(), at_root.end());
    return true;
}

DiagnosticList Verifier::check_translation(
    const Program& original, const std::vector<Pipelet>& pipelets,
    const std::vector<opt::PipeletPlan>& plans, const Program& optimized) const {
    DiagnosticList d;

    auto is_identity = [](const opt::CandidateLayout& layout) {
        if (!layout.caches.empty() || !layout.merges.empty()) return false;
        for (std::size_t i = 0; i < layout.order.size(); ++i) {
            if (layout.order[i] != i) return false;
        }
        return true;
    };

    for (const opt::PipeletPlan& plan : plans) {
        const opt::CandidateLayout& layout = plan.layout;
        if (plan.pipelet_id < 0 ||
            static_cast<std::size_t>(plan.pipelet_id) >= pipelets.size()) {
            d.error("plan.pipelet-id", kNoNode,
                    util::format("plan names pipelet %d of %zu",
                                 plan.pipelet_id, pipelets.size()));
            continue;
        }
        const Pipelet& pipelet =
            pipelets[static_cast<std::size_t>(plan.pipelet_id)];
        if (is_identity(layout)) continue;
        if (pipelet.is_switch_case) {
            d.error("plan.switch-case", pipelet.entry(),
                    util::format("pipelet %d is a switch-case table and "
                                 "cannot be transformed",
                                 plan.pipelet_id));
            continue;
        }
        const std::size_t n = pipelet.nodes.size();

        std::vector<ir::Table> tables;
        tables.reserve(n);
        bool nodes_ok = true;
        for (NodeId id : pipelet.nodes) {
            if (!id_in_range(original, id) || !original.node(id).is_table()) {
                d.error("plan.pipelet-id", id,
                        util::format("pipelet %d references node %d which is "
                                     "not a table of the original program",
                                     plan.pipelet_id, id));
                nodes_ok = false;
                break;
            }
            tables.push_back(original.node(id).table);
        }
        if (!nodes_ok) continue;

        // The order must be a permutation of the pipelet positions.
        bool perm_ok = layout.order.size() == n;
        std::vector<bool> seen(n, false);
        for (std::size_t v : layout.order) {
            if (!perm_ok) break;
            if (v >= n || seen[v]) perm_ok = false;
            else seen[v] = true;
        }
        if (!perm_ok) {
            d.error("plan.order", pipelet.entry(),
                    util::format("plan for pipelet %d: order is not a "
                                 "permutation of %zu positions",
                                 plan.pipelet_id, n));
            continue;
        }

        // Reorder legality: every dependent pair keeps its original relative
        // order (Match/Action/Write, analysis/dependency.h).
        DependencyGraph deps(tables);
        for (std::size_t x = 0; x < n; ++x) {
            for (std::size_t y = x + 1; y < n; ++y) {
                std::size_t i = layout.order[x];
                std::size_t j = layout.order[y];
                if (i <= j || !deps.dependent(i, j)) continue;
                // Original order was j before i; the plan swaps them.
                DependencyKind kind = classify_dependency(tables[j], tables[i]);
                if (kind == DependencyKind::None) {
                    kind = classify_dependency(tables[i], tables[j]);
                }
                d.error("plan.reorder.dependency", pipelet.nodes[j],
                        util::format(
                            "plan for pipelet %d reorders '%s' after '%s' "
                            "despite a %s dependency",
                            plan.pipelet_id, tables[j].name.c_str(),
                            tables[i].name.c_str(), to_string(kind)));
            }
        }

        // Segment sanity: in range, pairwise disjoint, caches and merges
        // never share a table.
        std::vector<opt::Segment> segments;
        for (const opt::Segment& s : layout.caches) segments.push_back(s);
        for (const opt::MergeSpec& m : layout.merges) segments.push_back(m.seg);
        bool segments_ok = true;
        for (const opt::Segment& s : segments) {
            if (s.first > s.last || s.last >= n) {
                d.error("plan.segments", pipelet.entry(),
                        util::format("plan for pipelet %d: segment [%zu-%zu] "
                                     "out of range for %zu tables",
                                     plan.pipelet_id, s.first, s.last, n));
                segments_ok = false;
            }
        }
        for (std::size_t a = 0; segments_ok && a < segments.size(); ++a) {
            for (std::size_t b = a + 1; b < segments.size(); ++b) {
                if (segments[a].overlaps(segments[b])) {
                    d.error("plan.segments", pipelet.entry(),
                            util::format("plan for pipelet %d: segments "
                                         "[%zu-%zu] and [%zu-%zu] overlap",
                                         plan.pipelet_id, segments[a].first,
                                         segments[a].last, segments[b].first,
                                         segments[b].last));
                    segments_ok = false;
                }
            }
        }
        if (!segments_ok) continue;

        // Cache segments: the cache key must be readable at lookup time — no
        // covered table may write a later covered table's match key — and
        // only Original tables can be covered.
        for (const opt::Segment& s : layout.caches) {
            std::vector<const ir::Table*> covered;
            for (std::size_t q = s.first; q <= s.last; ++q) {
                covered.push_back(&tables[layout.order[q]]);
            }
            for (const ir::Table* t : covered) {
                if (t->role != TableRole::Original) {
                    d.error("plan.cache.role", pipelet.entry(),
                            "cache segment covers non-original table '" +
                                t->name + "'");
                }
            }
            for (std::size_t a = 0; a < covered.size(); ++a) {
                for (std::size_t b = a + 1; b < covered.size(); ++b) {
                    if (classify_dependency(*covered[a], *covered[b]) ==
                        DependencyKind::Match) {
                        d.error("plan.cache.dependency", pipelet.entry(),
                                util::format(
                                    "cache segment in pipelet %d: '%s' writes "
                                    "a match key of '%s'; the cache key is "
                                    "not readable at lookup time",
                                    plan.pipelet_id, covered[a]->name.c_str(),
                                    covered[b]->name.c_str()));
                    }
                }
            }
        }

        // Merge segments: merged tables must be pairwise independent; the
        // merge-as-cache flavor needs all-exact keys; a full merge needs
        // argument-free default actions (a wildcard row cannot supply
        // action data, §3.2.3).
        for (const opt::MergeSpec& m : layout.merges) {
            std::vector<const ir::Table*> sources;
            for (std::size_t q = m.seg.first; q <= m.seg.last; ++q) {
                sources.push_back(&tables[layout.order[q]]);
            }
            for (const ir::Table* t : sources) {
                if (t->role != TableRole::Original) {
                    d.error("plan.merge.role", pipelet.entry(),
                            "merge segment covers non-original table '" +
                                t->name + "'");
                }
            }
            for (std::size_t a = 0; a < sources.size(); ++a) {
                for (std::size_t b = a + 1; b < sources.size(); ++b) {
                    if (!independent(*sources[a], *sources[b])) {
                        DependencyKind kind =
                            classify_dependency(*sources[a], *sources[b]);
                        if (kind == DependencyKind::None) {
                            kind = classify_dependency(*sources[b], *sources[a]);
                        }
                        d.error("plan.merge.dependency", pipelet.entry(),
                                util::format(
                                    "merge segment in pipelet %d combines "
                                    "'%s' and '%s' despite a %s dependency",
                                    plan.pipelet_id, sources[a]->name.c_str(),
                                    sources[b]->name.c_str(), to_string(kind)));
                    }
                }
            }
            for (const ir::Table* t : sources) {
                if (m.as_cache) {
                    for (const ir::MatchKey& k : t->keys) {
                        if (k.kind != ir::MatchKind::Exact) {
                            d.error("plan.merge.exact", pipelet.entry(),
                                    "merge-as-cache covers '" + t->name +
                                        "' whose key '" + k.field +
                                        "' is not exact-match");
                        }
                    }
                } else if (t->default_action >= 0) {
                    const ir::Action& def = t->actions[static_cast<std::size_t>(
                        t->default_action)];
                    if (action_args_needed(def) > 0) {
                        d.error("plan.merge.default", pipelet.entry(),
                                "full merge covers '" + t->name +
                                    "' whose default action '" + def.name +
                                    "' consumes runtime arguments");
                    }
                }
            }
        }
    }

    // Layer 1 over the optimized result.
    d.merge(check_program(optimized));

    // Path preservation: the canonical set of root-to-sink table sets must
    // be identical, with cache/merge provenance expanded. Only meaningful
    // when both sides are structurally sound.
    DiagnosticList original_structure = check_program(original);
    if (!original_structure.ok()) {
        d.warning("trans.original", kNoNode,
                  "original program fails structural verification; path "
                  "preservation not checked");
        return d;
    }
    if (!d.ok()) return d;

    std::vector<std::vector<std::string>> before, after;
    if (!canonical_path_sets(original, before) ||
        !canonical_path_sets(optimized, after)) {
        d.warning("trans.paths.capped", kNoNode,
                  util::format("path enumeration exceeded %zu sets; "
                               "preservation check skipped",
                               options_.max_path_sets));
        return d;
    }
    if (before != after) {
        for (const auto& s : before) {
            if (!std::binary_search(after.begin(), after.end(), s)) {
                d.error("trans.paths", kNoNode,
                        "optimized program loses root-to-sink table set " +
                            name_set_to_string(s));
            }
        }
        for (const auto& s : after) {
            if (!std::binary_search(before.begin(), before.end(), s)) {
                d.error("trans.paths", kNoNode,
                        "optimized program gains root-to-sink table set " +
                            name_set_to_string(s));
            }
        }
        if (d.ok()) {
            d.error("trans.paths", kNoNode,
                    "root-to-sink table sets differ between original and "
                    "optimized programs");
        }
    }
    return d;
}

DiagnosticList verify_structure(const Program& program,
                                const VerifyOptions& options) {
    return Verifier(options).check_program(program);
}

DiagnosticList verify_translation(const Program& original,
                                  const std::vector<Pipelet>& pipelets,
                                  const std::vector<opt::PipeletPlan>& plans,
                                  const Program& optimized,
                                  const VerifyOptions& options) {
    return Verifier(options).check_translation(original, pipelets, plans,
                                               optimized);
}

void verify_structure_or_throw(const Program& program,
                               const std::string& context,
                               const VerifyOptions& options) {
    DiagnosticList d = verify_structure(program, options);
    if (!d.ok()) throw VerifyError(context, std::move(d));
}

void verify_translation_or_throw(const Program& original,
                                 const std::vector<Pipelet>& pipelets,
                                 const std::vector<opt::PipeletPlan>& plans,
                                 const Program& optimized,
                                 const std::string& context,
                                 const VerifyOptions& options) {
    DiagnosticList d =
        verify_translation(original, pipelets, plans, optimized, options);
    if (!d.ok()) throw VerifyError(context, std::move(d));
}

}  // namespace pipeleon::analysis
