#include "analysis/diagnostics.h"

#include <atomic>

namespace pipeleon::analysis {

const char* to_string(Severity severity) {
    switch (severity) {
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

std::string to_string(const Diagnostic& diagnostic) {
    std::string out = to_string(diagnostic.severity);
    out += " [";
    out += diagnostic.rule;
    out += "]";
    if (diagnostic.node != ir::kNoNode) {
        out += " @node " + std::to_string(diagnostic.node);
    }
    out += ": ";
    out += diagnostic.message;
    return out;
}

void DiagnosticList::error(std::string rule, ir::NodeId node,
                           std::string message) {
    add(Diagnostic{Severity::Error, node, std::move(rule), std::move(message)});
}

void DiagnosticList::warning(std::string rule, ir::NodeId node,
                             std::string message) {
    add(Diagnostic{Severity::Warning, node, std::move(rule), std::move(message)});
}

void DiagnosticList::add(Diagnostic diagnostic) {
    if (diagnostic.severity == Severity::Error) ++errors_;
    items_.push_back(std::move(diagnostic));
}

void DiagnosticList::merge(const DiagnosticList& other) {
    for (const Diagnostic& d : other.items_) add(d);
}

bool DiagnosticList::has_rule(const std::string& rule) const {
    for (const Diagnostic& d : items_) {
        if (d.rule == rule) return true;
    }
    return false;
}

std::string DiagnosticList::to_string() const {
    std::string out;
    for (const Diagnostic& d : items_) {
        if (!out.empty()) out += '\n';
        out += analysis::to_string(d);
    }
    return out;
}

namespace {

std::string verify_error_what(const std::string& context,
                              const DiagnosticList& diagnostics) {
    std::string out = context;
    out += ": verification failed (";
    out += std::to_string(diagnostics.error_count());
    out += " error(s))";
    if (!diagnostics.empty()) {
        out += '\n';
        out += diagnostics.to_string();
    }
    return out;
}

}  // namespace

VerifyError::VerifyError(const std::string& context, DiagnosticList diagnostics)
    : std::runtime_error(verify_error_what(context, diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

const char* to_string(VerifyMode mode) {
    switch (mode) {
        case VerifyMode::Off: return "off";
        case VerifyMode::Structure: return "structure";
        case VerifyMode::Full: return "full";
    }
    return "?";
}

namespace {

#ifndef NDEBUG
constexpr VerifyMode kDefaultMode = VerifyMode::Full;
#else
constexpr VerifyMode kDefaultMode = VerifyMode::Structure;
#endif

std::atomic<VerifyMode> g_mode{kDefaultMode};

}  // namespace

VerifyMode verify_mode() { return g_mode.load(std::memory_order_relaxed); }

void set_verify_mode(VerifyMode mode) {
    g_mode.store(mode, std::memory_order_relaxed);
}

}  // namespace pipeleon::analysis
