// analysis/diagnostics.h — structured diagnostics for the program verifier
// (ISSUE 2). Verification failures are collected, not thrown: a verifier
// pass appends Diagnostic records to a DiagnosticList and the caller decides
// whether the error set warrants aborting (VerifyError) or just reporting
// (the lint CLI). Severity::Warning records suspicious-but-legal structure
// (e.g. unreachable nodes before compaction); only Severity::Error makes a
// program or plan invalid.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/types.h"

namespace pipeleon::analysis {

enum class Severity : std::uint8_t { Warning, Error };

const char* to_string(Severity severity);

/// One verifier finding. `rule` is a stable dotted identifier from the rule
/// catalog (DESIGN.md), e.g. "structure.cycle" or "plan.reorder.dependency";
/// tests and tools match on it, never on `message`.
struct Diagnostic {
    Severity severity = Severity::Error;
    ir::NodeId node = ir::kNoNode;  ///< offending node; kNoNode = program-level
    std::string rule;
    std::string message;

    bool operator==(const Diagnostic&) const = default;
};

/// Renders "error [structure.cycle] @node 3: ...".
std::string to_string(const Diagnostic& diagnostic);

/// An append-only collection of findings with severity bookkeeping.
class DiagnosticList {
public:
    void error(std::string rule, ir::NodeId node, std::string message);
    void warning(std::string rule, ir::NodeId node, std::string message);
    void add(Diagnostic diagnostic);
    /// Appends every finding of `other`.
    void merge(const DiagnosticList& other);

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t error_count() const { return errors_; }
    /// True when no Error-severity finding was recorded.
    bool ok() const { return errors_ == 0; }

    const std::vector<Diagnostic>& items() const { return items_; }
    const Diagnostic& operator[](std::size_t i) const { return items_[i]; }

    /// True when some finding carries the given rule id.
    bool has_rule(const std::string& rule) const;

    /// One line per finding; empty string when clean.
    std::string to_string() const;

private:
    std::vector<Diagnostic> items_;
    std::size_t errors_ = 0;
};

/// Typed verification failure: carries the structured findings so callers
/// (the optimizer, tests, the lint CLI) can inspect rules instead of parsing
/// the what() text. Derives from std::runtime_error for compatibility with
/// pre-verifier call sites.
class VerifyError : public std::runtime_error {
public:
    VerifyError(const std::string& context, DiagnosticList diagnostics);

    const DiagnosticList& diagnostics() const { return diagnostics_; }

private:
    DiagnosticList diagnostics_;
};

/// How much checking the transformation pipeline performs at plan-apply
/// time (opt::apply_plans and the optimizer's candidate filter):
///  - Off:       pre-condition checks only (the seed behavior),
///  - Structure: Layer 1 structural well-formedness of the result,
///  - Full:      Layer 1 + Layer 2 translation validation against the
///               original program.
enum class VerifyMode : std::uint8_t { Off, Structure, Full };

const char* to_string(VerifyMode mode);

/// Process-wide default mode: Full in debug builds (assert-style safety
/// net), Structure in release. Benches pumping packets through repeated
/// optimize/apply loops set Off to keep verification out of measured paths.
VerifyMode verify_mode();
void set_verify_mode(VerifyMode mode);

}  // namespace pipeleon::analysis
