// analysis/verify.h — the program verifier and optimization-safety checker
// (ISSUE 2). Pipeleon's rewrites are only sound because they "preserve the
// program semantics by table dependency analysis" (§3.2); this subsystem
// enforces that claim instead of assuming it, in the spirit of the paper's
// Gauntlet-based validation [50] of optimized programs.
//
// Two layers:
//
//  Layer 1 (check_program) — structural well-formedness of any ir::Program:
//  acyclicity, live edge targets, reachability, table arity/uniqueness,
//  branch sanity, cache nodes fronting contiguous covered runs, and
//  core-partition legality (§3.2.4: core-crossing edges must pass through a
//  Migration -> Navigation pair once the program is instrumented).
//
//  Layer 2 (check_translation) — translation validation: given the original
//  program, its pipelets, the optimization plans, and the optimized program,
//  recompute analysis::field_sets / dependency classification and verify
//  that every reorder, merge, and cache insertion respects Match/Action/
//  Write ordering (analysis/dependency.h), and that the set of root-to-sink
//  action sequences reachable for any table-hit pattern is preserved
//  (canonicalized over cache/merge provenance).
//
// Diagnostics are collected, never thrown, so one run reports every
// violation; callers that need an exception use the *_or_throw wrappers,
// which raise a typed VerifyError.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/pipelet.h"
#include "ir/entry.h"
#include "ir/program.h"
#include "opt/transform.h"

namespace pipeleon::analysis {

struct VerifyOptions {
    /// Path-preservation enumeration cap: when a program's distinct
    /// root-to-sink canonical table sets exceed this, the comparison is
    /// skipped with a trans.paths.capped warning instead of running forever
    /// on branch-heavy programs.
    std::size_t max_path_sets = 4096;
    /// Report unreachable nodes (a warning; transformations legitimately
    /// leave garbage behind before compaction).
    bool warn_unreachable = true;
};

class Verifier {
public:
    explicit Verifier(VerifyOptions options = {}) : options_(options) {}

    const VerifyOptions& options() const { return options_; }

    /// Layer 1: structural well-formedness. Rules: structure.*.
    DiagnosticList check_program(const ir::Program& program) const;

    /// Entry/table consistency: key arity and kinds, action ids in range,
    /// action-data words cover every arg_index the action consumes.
    /// Rules: entry.*.
    DiagnosticList check_entries(const ir::Table& table,
                                 const std::vector<ir::TableEntry>& entries) const;

    /// Entry-set consistency of a remapped deployment (ISSUE 3): given the
    /// original program, the authoritative original-space entry store, the
    /// program about to be deployed, and the entry loads the control plane
    /// computed for it, verify that the loads address real deployed tables
    /// with legal roles, that no table is loaded twice, that direct tables
    /// carry exactly the original store's entries, that every merged table
    /// receives its rebuilt cross product, and that no original table's
    /// entries are silently discarded by the new layout. Each load's entries
    /// also pass check_entries against the deployed table definition.
    /// Rules: entry.remap.* (plus entry.* from the per-load pass).
    DiagnosticList check_entry_remap(
        const ir::Program& original,
        const std::unordered_map<std::string, std::vector<ir::TableEntry>>&
            original_store,
        const ir::Program& deployed,
        const std::vector<ir::EntryLoad>& loads) const;

    /// Layer 2: translation validation of `optimized` against `original`
    /// under `plans` (which refer to `pipelets`, the partition of
    /// `original`). Includes a Layer 1 pass over `optimized`.
    /// Rules: plan.*, trans.*, structure.*.
    DiagnosticList check_translation(const ir::Program& original,
                                     const std::vector<Pipelet>& pipelets,
                                     const std::vector<opt::PipeletPlan>& plans,
                                     const ir::Program& optimized) const;

    /// The canonical root-to-sink table sets used by the path-preservation
    /// check: each element is the sorted set of *original* table names a
    /// packet can traverse on one root-to-sink path, with cache/merged
    /// tables expanded to their origin tables and navigation/migration
    /// context tables ignored. Returns false when `options().max_path_sets`
    /// was exceeded (sets is left incomplete). Exposed for tests and tools.
    bool canonical_path_sets(const ir::Program& program,
                             std::vector<std::vector<std::string>>& sets) const;

private:
    VerifyOptions options_;
};

/// Convenience wrappers over a default-constructed Verifier.
DiagnosticList verify_structure(const ir::Program& program,
                                const VerifyOptions& options = {});
DiagnosticList verify_translation(const ir::Program& original,
                                  const std::vector<Pipelet>& pipelets,
                                  const std::vector<opt::PipeletPlan>& plans,
                                  const ir::Program& optimized,
                                  const VerifyOptions& options = {});

/// Throws VerifyError (with the full diagnostic list) when the check finds
/// any Error-severity finding. `context` names the choke point, e.g.
/// "json_io.load" or "opt.apply_plans".
void verify_structure_or_throw(const ir::Program& program,
                               const std::string& context,
                               const VerifyOptions& options = {});
void verify_translation_or_throw(const ir::Program& original,
                                 const std::vector<Pipelet>& pipelets,
                                 const std::vector<opt::PipeletPlan>& plans,
                                 const ir::Program& optimized,
                                 const std::string& context,
                                 const VerifyOptions& options = {});

}  // namespace pipeleon::analysis
