// runtime/api_mapper.h — control-plane API mapping (§2.3): "Pipeleon ensures
// the same program management APIs (e.g., entry insertion) by mapping the
// API calls to the original program to the optimized version." Operators
// keep inserting/deleting entries against original table names; the mapper
// owns the authoritative original-space entry store, pushes the entries to
// whatever deployed tables implement each original one (including rebuilding
// merged tables' Cartesian entries), invalidates covering caches, and
// tracks per-table update rates for the profiler.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/program.h"
#include "profile/counter_map.h"
#include "sim/emulator.h"

namespace pipeleon::runtime {

class ApiMapper {
public:
    explicit ApiMapper(const ir::Program& original);

    // ---------------------------------------------- operator-facing API

    /// Inserts an entry into an original table; propagated to the deployed
    /// program in `emulator`. Returns false for unknown tables or
    /// incompatible entries.
    bool insert(sim::Emulator& emulator, const std::string& table,
                const ir::TableEntry& entry);
    bool erase(sim::Emulator& emulator, const std::string& table,
               const std::vector<ir::FieldMatch>& key);
    bool modify(sim::Emulator& emulator, const std::string& table,
                const ir::TableEntry& entry);

    /// The original-space entries of a table (empty vector for unknown).
    const std::vector<ir::TableEntry>& entries(const std::string& table) const;

    // ------------------------------------------------- deployment support

    /// Installs the full original-space store into a freshly deployed
    /// program: direct tables get their entries, merged tables get the
    /// rebuilt cross products.
    void deploy_entries(sim::Emulator& emulator) const;

    /// Pure compute half of deploy_entries: the entry loads (deployed table
    /// name -> entries) a deployment of `deployed` needs, without touching
    /// any emulator. The controller runs this off the hot path, hands the
    /// result to the verifier's entry.remap.* pass, and ships it inside a
    /// single EpochSwap so layout and entries install atomically. Merged
    /// tables whose rebuild exceeds limits yield no load (the verifier
    /// reports them as entry.remap.missing-load).
    std::vector<ir::EntryLoad> remapped_entries(
        const ir::Program& deployed) const;

    /// The authoritative original-space store (for the verifier).
    const std::unordered_map<std::string, std::vector<ir::TableEntry>>& store()
        const {
        return store_;
    }

    // ------------------------------------------------------- profiling

    /// Per-original-table entry snapshots for the current window (counts,
    /// update totals, prefix/mask diversity). Merged-away tables are
    /// included — the emulator cannot know them.
    std::unordered_map<std::string, profile::EntrySnapshot> snapshots() const;

    /// Zeroes the window update counters.
    void begin_window();

private:
    /// Re-pushes the original table's state into every deployed table that
    /// implements it and invalidates covering caches.
    void propagate(sim::Emulator& emulator, const std::string& table);

    // Hashed by table name, matching the FieldTable interning pattern: the
    // propagate path runs on every control-plane call and should not pay
    // ordered-tree string comparisons.
    ir::Program original_;
    std::unordered_map<std::string, ir::Table> tables_;
    std::unordered_map<std::string, std::vector<ir::TableEntry>> store_;
    std::unordered_map<std::string, std::uint64_t> window_updates_;
};

}  // namespace pipeleon::runtime
