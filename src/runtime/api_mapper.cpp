#include "runtime/api_mapper.h"

#include <algorithm>
#include <optional>

#include "opt/merge.h"
#include "util/logging.h"

namespace pipeleon::runtime {

using ir::Node;
using ir::NodeId;
using ir::TableEntry;
using ir::TableRole;

ApiMapper::ApiMapper(const ir::Program& original) : original_(original) {
    for (const Node& n : original_.nodes()) {
        if (n.is_table()) {
            tables_.emplace(n.table.name, n.table);
            store_.emplace(n.table.name, std::vector<TableEntry>{});
            window_updates_.emplace(n.table.name, 0);
        }
    }
}

bool ApiMapper::insert(sim::Emulator& emulator, const std::string& table,
                       const TableEntry& entry) {
    auto it = tables_.find(table);
    if (it == tables_.end() || !entry.compatible_with(it->second)) return false;
    store_[table].push_back(entry);
    ++window_updates_[table];
    propagate(emulator, table);
    return true;
}

bool ApiMapper::erase(sim::Emulator& emulator, const std::string& table,
                      const std::vector<ir::FieldMatch>& key) {
    auto it = store_.find(table);
    if (it == store_.end()) return false;
    auto& entries = it->second;
    auto pos = std::find_if(entries.begin(), entries.end(),
                            [&key](const TableEntry& e) { return e.key == key; });
    if (pos == entries.end()) return false;
    entries.erase(pos);
    ++window_updates_[table];
    propagate(emulator, table);
    return true;
}

bool ApiMapper::modify(sim::Emulator& emulator, const std::string& table,
                       const TableEntry& entry) {
    auto it = store_.find(table);
    if (it == store_.end()) return false;
    for (TableEntry& e : it->second) {
        if (e.key == entry.key) {
            e = entry;
            ++window_updates_[table];
            propagate(emulator, table);
            return true;
        }
    }
    return false;
}

const std::vector<TableEntry>& ApiMapper::entries(const std::string& table) const {
    static const std::vector<TableEntry> kEmpty;
    auto it = store_.find(table);
    return it == store_.end() ? kEmpty : it->second;
}

namespace {

/// Computes a merged table's cross-product entries from the original store
/// (no emulator involved). nullopt when a source is unknown or the rebuild
/// exceeds opt::build_merged_entries limits.
std::optional<std::vector<TableEntry>> compute_merged(
    const ir::Table& merged,
    const std::unordered_map<std::string, ir::Table>& tables,
    const std::unordered_map<std::string, std::vector<TableEntry>>& store) {
    std::vector<const ir::Table*> sources;
    std::vector<std::vector<TableEntry>> source_entries;
    for (const std::string& origin : merged.origin_tables) {
        auto t = tables.find(origin);
        auto e = store.find(origin);
        if (t == tables.end() || e == store.end()) return std::nullopt;
        sources.push_back(&t->second);
        source_entries.push_back(e->second);
    }
    bool as_cache = merged.role == TableRole::MergedCache;
    return opt::build_merged_entries(sources, source_entries, merged, as_cache);
}

/// Rebuilds a merged table's entries from the original store.
bool rebuild_merged(
    sim::Emulator& emulator, const ir::Table& merged,
    const std::unordered_map<std::string, ir::Table>& tables,
    const std::unordered_map<std::string, std::vector<TableEntry>>& store) {
    auto entries = compute_merged(merged, tables, store);
    if (!entries.has_value()) {
        util::log_warn("ApiMapper: merged entry rebuild for '" + merged.name +
                       "' exceeded limits; table left unchanged");
        return false;
    }
    return emulator.set_entries(merged.name, std::move(*entries));
}

}  // namespace

void ApiMapper::propagate(sim::Emulator& emulator, const std::string& table) {
    const ir::Program& deployed = emulator.program();
    for (const Node& n : deployed.nodes()) {
        if (!n.is_table()) continue;
        const ir::Table& t = n.table;
        switch (t.role) {
            case TableRole::Original:
                if (t.name == table) {
                    emulator.set_entries(t.name, store_[table]);
                }
                break;
            case TableRole::Merged:
            case TableRole::MergedCache: {
                const auto& origins = t.origin_tables;
                if (std::find(origins.begin(), origins.end(), table) !=
                    origins.end()) {
                    rebuild_merged(emulator, t, tables_, store_);
                }
                break;
            }
            case TableRole::Cache:
            case TableRole::Navigation:
            case TableRole::Migration:
                break;
        }
    }
    emulator.invalidate_caches_covering(table);
}

void ApiMapper::deploy_entries(sim::Emulator& emulator) const {
    const ir::Program& deployed = emulator.program();
    for (const Node& n : deployed.nodes()) {
        if (!n.is_table()) continue;
        const ir::Table& t = n.table;
        switch (t.role) {
            case TableRole::Original: {
                auto it = store_.find(t.name);
                if (it != store_.end()) {
                    emulator.set_entries(t.name, it->second);
                }
                break;
            }
            case TableRole::Merged:
            case TableRole::MergedCache:
                rebuild_merged(emulator, t, tables_, store_);
                break;
            case TableRole::Cache:
            case TableRole::Navigation:
            case TableRole::Migration:
                break;
        }
    }
}

std::vector<ir::EntryLoad> ApiMapper::remapped_entries(
    const ir::Program& deployed) const {
    std::vector<ir::EntryLoad> loads;
    for (const Node& n : deployed.nodes()) {
        if (!n.is_table()) continue;
        const ir::Table& t = n.table;
        switch (t.role) {
            case TableRole::Original: {
                auto it = store_.find(t.name);
                if (it != store_.end()) {
                    loads.push_back(ir::EntryLoad{t.name, it->second});
                }
                break;
            }
            case TableRole::Merged:
            case TableRole::MergedCache: {
                auto entries = compute_merged(t, tables_, store_);
                if (entries.has_value()) {
                    loads.push_back(ir::EntryLoad{t.name, std::move(*entries)});
                } else {
                    util::log_warn("ApiMapper: merged entry rebuild for '" +
                                   t.name + "' exceeded limits; no load");
                }
                break;
            }
            case TableRole::Cache:
            case TableRole::Navigation:
            case TableRole::Migration:
                break;
        }
    }
    return loads;
}

std::unordered_map<std::string, profile::EntrySnapshot> ApiMapper::snapshots()
    const {
    std::unordered_map<std::string, profile::EntrySnapshot> out;
    for (const auto& [name, entries] : store_) {
        profile::EntrySnapshot snap;
        snap.entry_count = entries.size();
        auto u = window_updates_.find(name);
        snap.entry_updates = u == window_updates_.end() ? 0 : u->second;
        snap.lpm_prefix_count = ir::distinct_prefix_lengths(entries);
        snap.ternary_mask_count = ir::distinct_masks(entries);
        out.emplace(name, snap);
    }
    return out;
}

void ApiMapper::begin_window() {
    for (auto& [name, count] : window_updates_) count = 0;
}

}  // namespace pipeleon::runtime
