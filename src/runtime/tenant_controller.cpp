#include "runtime/tenant_controller.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"
#include "util/strings.h"

namespace pipeleon::runtime {

MultiController::MultiController(sim::TenantRegistry& registry,
                                 cost::CostModel model,
                                 MultiControllerConfig config)
    : registry_(registry), model_(std::move(model)), config_(std::move(config)) {}

void MultiController::attach(sim::TenantId id, ir::Program original) {
    attach(id, std::move(original), config_.controller);
}

void MultiController::attach(sim::TenantId id, ir::Program original,
                             ControllerConfig config) {
    if (runtime_for(id) != nullptr) {
        throw std::invalid_argument("tenant already attached: " +
                                    registry_.name(id));
    }
    TenantRt rt;
    rt.id = id;
    rt.last_completed = registry_.stats(id).completed;
    rt.controller = std::make_unique<Controller>(
        registry_.emulator(id), std::move(original), model_, std::move(config));
    tenants_.push_back(std::move(rt));
}

Controller& MultiController::controller(sim::TenantId id) {
    TenantRt* rt = runtime_for(id);
    if (rt == nullptr) {
        throw std::out_of_range("tenant not attached: " + registry_.name(id));
    }
    return *rt->controller;
}

MultiController::TenantRt* MultiController::runtime_for(sim::TenantId id) {
    for (TenantRt& rt : tenants_) {
        if (rt.id == id) return &rt;
    }
    return nullptr;
}

const MultiController::TenantRt* MultiController::runtime_for(
    sim::TenantId id) const {
    for (const TenantRt& rt : tenants_) {
        if (rt.id == id) return &rt;
    }
    return nullptr;
}

void MultiController::enqueue_deploy(sim::TenantId id, ir::Program target) {
    TenantRt* rt = runtime_for(id);
    if (rt == nullptr) {
        throw std::out_of_range("tenant not attached: " + registry_.name(id));
    }
    ++rt->enqueued_this_round;
    queue_.push_back({id, std::move(target)});
}

std::size_t MultiController::queued_deploys(sim::TenantId id) const {
    return static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(),
                      [&](const DeployRequest& r) { return r.tenant == id; }));
}

bool MultiController::quarantined(sim::TenantId id) const {
    const TenantRt* rt = runtime_for(id);
    return rt != nullptr && rt->quarantine_left > 0;
}

const MultiController::TenantRound* MultiController::RoundResult::for_tenant(
    sim::TenantId id) const {
    for (const TenantRound& r : tenants) {
        if (r.tenant == id) return &r;
    }
    return nullptr;
}

void MultiController::note_reject(TenantRt& rt) {
    ++rt.consecutive_rejects;
    if (rt.consecutive_rejects >= config_.quarantine.reject_threshold) {
        rt.quarantine_left = config_.quarantine.quarantine_rounds;
        rt.consecutive_rejects = 0;
        util::log_warn(util::format(
            "multicontroller: quarantining tenant %s for %d round(s) "
            "(repeated verify rejects)",
            registry_.name(rt.id).c_str(), rt.quarantine_left));
    }
}

MultiController::RoundResult MultiController::tick_all() {
    RoundResult round;
    round.tenants.resize(tenants_.size());

    // (1) Window boundary: measure each tenant's load (packets completed
    // since the last round) and re-split the Eq. 5 budget proportionally.
    std::vector<double> loads(tenants_.size(), 0.0);
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        TenantRt& rt = tenants_[i];
        std::uint64_t completed = registry_.stats(rt.id).completed;
        loads[i] = static_cast<double>(completed - rt.last_completed);
        rt.last_completed = completed;
    }
    std::vector<search::ResourceLimits> granted;
    if (config_.split_budget && !tenants_.empty()) {
        granted = search::split_budget(config_.total_limits, loads,
                                       config_.split);
    } else {
        granted.assign(tenants_.size(), config_.total_limits);
    }
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        tenants_[i].controller->config().optimizer.limits = granted[i];
        round.tenants[i].tenant = tenants_[i].id;
        round.tenants[i].granted = granted[i];
        round.tenants[i].measured_load = loads[i];
    }

    // (2) Tick quarantine clocks, then detect deploy storms: the signal is
    // requests *submitted since the previous round* — a deferred backlog
    // from a past storm drains at the rate cap below and never re-trips.
    for (TenantRt& rt : tenants_) {
        if (rt.quarantine_left > 0) --rt.quarantine_left;
    }
    for (TenantRt& rt : tenants_) {
        std::size_t fresh = rt.enqueued_this_round;
        rt.enqueued_this_round = 0;
        if (fresh > config_.quarantine.storm_threshold &&
            rt.quarantine_left <= 0) {
            rt.quarantine_left = config_.quarantine.quarantine_rounds;
            util::log_warn(util::format(
                "multicontroller: deploy storm from tenant %s "
                "(%zu submitted > %zu); quarantining for %d round(s)",
                registry_.name(rt.id).c_str(), fresh,
                config_.quarantine.storm_threshold, rt.quarantine_left));
        }
    }

    // (3) Drain the shared queue in global FIFO order. Quarantined tenants'
    // requests are deferred in place (order preserved), as is anything past
    // a tenant's per-round rate cap; each applied request runs only that
    // tenant's prepare→verify→commit, so a bad deploy cannot touch a
    // neighbor. A deploy that throws (e.g. a structurally invalid program)
    // counts as a reject — a malformed request must not escape the
    // offender's lane as an exception.
    std::deque<DeployRequest> deferred;
    while (!queue_.empty()) {
        DeployRequest req = std::move(queue_.front());
        queue_.pop_front();
        std::size_t idx = 0;
        TenantRt* rt = nullptr;
        for (; idx < tenants_.size(); ++idx) {
            if (tenants_[idx].id == req.tenant) {
                rt = &tenants_[idx];
                break;
            }
        }
        if (rt == nullptr) continue;  // detached tenant: drop the request
        TenantRound& tr = round.tenants[idx];
        if (rt->quarantine_left > 0 ||
            tr.deploys_applied + tr.deploys_rejected >=
                config_.quarantine.storm_threshold) {
            ++tr.deploys_deferred;
            deferred.push_back(std::move(req));
            continue;
        }
        bool rejected = false;
        try {
            registry_.apply_quota(req.tenant, req.target);
            TickResult r =
                rt->controller->deploy_external(std::move(req.target));
            rejected = r.verify_rejected;
        } catch (const std::exception& e) {
            rejected = true;
            util::log_warn(util::format(
                "multicontroller: deploy from tenant %s threw: %s",
                registry_.name(req.tenant).c_str(), e.what()));
        }
        if (rejected) {
            ++tr.deploys_rejected;
            note_reject(*rt);
        } else {
            ++tr.deploys_applied;
            rt->consecutive_rejects = 0;
        }
    }
    queue_ = std::move(deferred);

    // (4) Per-tenant optimizer rounds. A quarantined tenant sits out; every
    // other tenant profiles/searches/deploys against its own emulator and
    // its granted budget slice.
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        TenantRt& rt = tenants_[i];
        TenantRound& tr = round.tenants[i];
        if (rt.quarantine_left > 0) {
            tr.quarantined = true;
            continue;
        }
        tr.tick = rt.controller->tick();
        tr.ticked = true;
        if (tr.tick.verify_rejected) {
            note_reject(rt);
        } else if (tr.tick.deployed) {
            rt.consecutive_rejects = 0;
        }
    }
    return round;
}

}  // namespace pipeleon::runtime
