// runtime/controller.h — the Pipeleon runtime loop (Fig 3): profile the
// deployed program, translate counters back to the original program via the
// counter map, detect profile changes, recompute the optimization plan from
// the original program, and deploy when it beats what is running. Because
// every round recomputes from the original program, bad decisions revert
// automatically — a merge whose tables grew is simply not chosen again
// (§3.2.3), and a cache whose measured hit rate collapsed loses to the
// cache-free layout (§3.2.2, the Fig 11a scenario).
#pragma once

#include <optional>

#include "profile/change_detect.h"
#include "runtime/api_mapper.h"
#include "search/optimizer.h"
#include "sim/emulator.h"
#include "trafficgen/workload.h"

namespace pipeleon::runtime {

struct ControllerConfig {
    /// How often the harness is expected to call tick() (virtual seconds);
    /// informational, used for logging only.
    double profile_interval_s = 5.0;
    search::OptimizerConfig optimizer;
    profile::ChangeDetector detector;
    /// When true, skip the search unless the profile moved; the first tick
    /// always optimizes.
    bool reoptimize_on_change_only = true;
    /// Minimum predicted relative gain (fraction of baseline latency) to
    /// deploy a new layout.
    double min_relative_gain = 0.01;
    /// Use incremental deployment (§6): unchanged flow caches stay warm and
    /// reflash downtime scales with the changed-table fraction.
    bool incremental_deployment = false;
};

/// Result of one controller tick.
struct TickResult {
    bool profiled = false;
    bool searched = false;
    bool deployed = false;
    double downtime_s = 0.0;
    double profile_shift = 0.0;
    /// Incremental deployments only: how many caches survived warm.
    std::size_t caches_kept_warm = 0;
    std::optional<search::OptimizationOutcome> outcome;
};

class Controller {
public:
    Controller(sim::Emulator& emulator, ir::Program original,
               cost::CostModel model, ControllerConfig config);

    ApiMapper& api() { return api_; }
    const ir::Program& original() const { return original_; }
    const profile::RuntimeProfile& last_profile() const { return last_profile_; }
    const ControllerConfig& config() const { return config_; }
    ControllerConfig& config() { return config_; }

    /// One profiling/optimization round against the emulator's current
    /// window. The harness decides the cadence (virtual time).
    TickResult tick();

    /// Aggregate measurements of one pumped window.
    struct PumpStats {
        double mean_cycles = 0.0;
        double drop_rate = 0.0;
        double throughput_gbps = 0.0;
        std::uint64_t packets = 0;
        std::uint64_t dropped = 0;
    };

    /// Streams `packets` packets from the workload through the emulator's
    /// batched data plane (batches of `batch_size`) and advances virtual
    /// time by `window_seconds`. This is the harness-side pump the figure
    /// benches use between tick()s; it replaces their scalar
    /// packet-at-a-time loops.
    PumpStats pump_window(trafficgen::Workload& workload, int packets,
                          double window_seconds, std::size_t batch_size = 256);

private:
    /// Reads the emulator window, augments entry snapshots from the API
    /// mapper, and translates to original-program space.
    profile::RuntimeProfile collect_profile();

    sim::Emulator& emulator_;
    ir::Program original_;
    cost::CostModel model_;
    ControllerConfig config_;
    ApiMapper api_;
    profile::RuntimeProfile last_profile_;
    bool have_profile_ = false;
};

}  // namespace pipeleon::runtime
