// runtime/controller.h — the Pipeleon runtime loop (Fig 3): profile the
// deployed program, translate counters back to the original program via the
// counter map, detect profile changes, recompute the optimization plan from
// the original program, and deploy when it beats what is running. Because
// every round recomputes from the original program, bad decisions revert
// automatically — a merge whose tables grew is simply not chosen again
// (§3.2.3), and a cache whose measured hit rate collapsed loses to the
// cache-free layout (§3.2.2, the Fig 11a scenario).
#pragma once

#include <functional>
#include <optional>

#include "analysis/verify.h"
#include "profile/change_detect.h"
#include "runtime/api_mapper.h"
#include "search/optimizer.h"
#include "sim/emulator.h"
#include "trafficgen/workload.h"

namespace pipeleon::runtime {

struct ControllerConfig {
    /// How often the harness is expected to call tick() (virtual seconds);
    /// informational, used for logging only.
    double profile_interval_s = 5.0;
    search::OptimizerConfig optimizer;
    profile::ChangeDetector detector;
    /// When true, skip the search unless the profile moved; the first tick
    /// always optimizes.
    bool reoptimize_on_change_only = true;
    /// Minimum predicted relative gain (fraction of baseline latency) to
    /// deploy a new layout.
    double min_relative_gain = 0.01;
    /// Use incremental deployment (§6): unchanged flow caches stay warm and
    /// reflash downtime scales with the changed-table fraction.
    bool incremental_deployment = false;

    /// Gate every deployment behind the verifier (ISSUE 3): translation
    /// validation of the optimized program against the original, plus
    /// entry.remap.* consistency of the remapped entry set. A rejected
    /// deployment never reaches Emulator::reconfigure* — the old program
    /// keeps serving and TickResult carries the diagnostics.
    bool verify_deploys = true;
    analysis::VerifyOptions verify;

    /// Dynamic batch sizing (pump_window without an explicit size): the
    /// batch grows/shrinks between these bounds from the previous batch's
    /// measured cycles, amortizing steering cost when flows are cheap and
    /// capping tail latency when they are not.
    std::size_t batch_floor = 32;
    std::size_t batch_cap = 1024;
    /// Cycle budget one batch should stay near.
    double target_batch_cycles = 200000.0;
    /// Overflow drop-rate feedback (ISSUE 6): a burst whose RX-ring overflow
    /// drop fraction exceeds this shrinks the next burst (overload sheds in
    /// smaller units), taking priority over the cycle-budget move. The
    /// signal is the ring drop *counters* — actual descriptors the rings
    /// refused — not the per-packet policy verdicts: an ACL deny-all
    /// workload drops 100% of its packets by policy yet overloads nothing,
    /// and must not thrash the batch size.
    double max_batch_drop_rate = 0.5;
    /// RX descriptors per queue for the pump's ring front end. 0 = auto:
    /// 2 × the largest burst the pump can issue, rounded up to a power of
    /// two, so the closed-loop pump never overflow-drops. Set it small to
    /// exercise overload shedding.
    std::size_t ring_capacity = 0;

    /// Test seam: mutates the optimizer's outcome before prepare/verify.
    /// Lets tests inject a known-bad optimized program and assert the
    /// verifier gate rejects it. Null in production.
    std::function<void(search::OptimizationOutcome&)> outcome_hook;
};

/// Result of one controller tick.
struct TickResult {
    bool profiled = false;
    bool searched = false;
    bool deployed = false;
    double downtime_s = 0.0;
    double profile_shift = 0.0;
    /// Incremental deployments only: how many caches survived warm.
    std::size_t caches_kept_warm = 0;
    /// The verifier refused the candidate deployment: the previously
    /// deployed program is still serving and `verify_diagnostics` explains
    /// why the candidate was unsound.
    bool verify_rejected = false;
    analysis::DiagnosticList verify_diagnostics;
    std::optional<search::OptimizationOutcome> outcome;
};

class Controller {
public:
    Controller(sim::Emulator& emulator, ir::Program original,
               cost::CostModel model, ControllerConfig config);

    ApiMapper& api() { return api_; }
    const ir::Program& original() const { return original_; }
    const profile::RuntimeProfile& last_profile() const { return last_profile_; }
    const ControllerConfig& config() const { return config_; }
    ControllerConfig& config() { return config_; }

    /// One profiling/optimization round against the emulator's current
    /// window. The harness decides the cadence (virtual time).
    TickResult tick();

    /// Deploys an externally supplied program through the same
    /// prepare→verify→commit path tick() uses (ISSUE 8: a tenant pushing a
    /// program revision). The target must host the original program's API
    /// surface (its tables, possibly merged/cached) so the remapped entry
    /// set stays well-defined; the verifier gates the commit exactly as for
    /// optimizer output (structure + entry-remap checks — no translation
    /// validation, since the program was not derived by our search). On
    /// rejection the old program keeps serving and the result carries the
    /// diagnostics.
    TickResult deploy_external(ir::Program target);

    /// Aggregate measurements of one pumped window. `packets` counts
    /// packets offered (generated); `dropped`/`drop_rate` are the policy
    /// verdicts of processed packets; `ring_drops` are descriptors the RX
    /// rings refused (overload shed before processing).
    struct PumpStats {
        double mean_cycles = 0.0;
        double drop_rate = 0.0;
        double throughput_gbps = 0.0;
        std::uint64_t packets = 0;
        std::uint64_t dropped = 0;
        /// Ring front end (ISSUE 6): packets offered to the dispatcher and
        /// RX overflow drops over the window.
        std::uint64_t offered = 0;
        std::uint64_t ring_drops = 0;
        /// Batch-size telemetry (dynamic sizing observability).
        std::uint64_t batches = 0;
        std::size_t min_batch = 0;
        std::size_t max_batch = 0;
        std::size_t last_batch = 0;
        /// Why the adaptive controller moved (counts per decision): drops
        /// feedback shrank, cycle budget shrank, cycle budget grew.
        std::uint64_t batch_shrinks_drops = 0;
        std::uint64_t batch_shrinks_cycles = 0;
        std::uint64_t batch_grows = 0;
        /// Worst single-burst ring-overflow drop fraction seen this window
        /// (the shrink-feedback signal).
        double max_batch_drop = 0.0;
    };

    /// Streams `packets` packets from the workload through the emulator's
    /// descriptor-ring data plane (bursts of `batch_size` dispatched via
    /// RSS, then polled to completion) and advances virtual time by
    /// `window_seconds`. This is the harness-side pump the figure benches
    /// use between tick()s. Each poll is a control-plane drain point (ring
    /// drain == batch boundary). Time advances proportionally to the
    /// packets actually generated, so a workload phase ending early cannot
    /// skew window timestamps.
    PumpStats pump_window(trafficgen::Workload& workload, int packets,
                          double window_seconds, std::size_t batch_size);

    /// Dynamic-batch overload: sizes each batch from the previous one's
    /// measured cycles, halving above config().target_batch_cycles and
    /// doubling below half of it, clamped to [batch_floor, batch_cap]. The
    /// adapted size persists across windows.
    PumpStats pump_window(trafficgen::Workload& workload, int packets,
                          double window_seconds);

private:
    /// A deployment candidate, fully computed off the hot path: the program
    /// to install and the remapped entry loads that must land with it.
    struct PreparedDeploy {
        ir::Program program;
        std::vector<ir::EntryLoad> entries;
        bool incremental = false;
    };

    /// prepare: compute the remapped entry set for `target`.
    PreparedDeploy prepare_deploy(ir::Program target) const;
    /// verify: translation validation (when `outcome` describes an
    /// optimization of original_) plus entry.remap consistency.
    analysis::DiagnosticList verify_deploy(
        const search::OptimizationOutcome* outcome,
        const PreparedDeploy& prepared) const;
    /// commit: ship program + entries as one queued epoch swap.
    void commit_deploy(PreparedDeploy prepared, TickResult& result);

    /// The pump loop shared by both overloads; `adaptive` enables dynamic
    /// sizing starting from `batch_size`.
    PumpStats pump_window_impl(trafficgen::Workload& workload, int packets,
                               double window_seconds, std::size_t batch_size,
                               bool adaptive);

    /// (Re)builds the pump's dispatcher when the ring capacity, worker
    /// count, or deterministic flag it was built for changed. The pump
    /// drains its rings every poll, so a rebuild never strands descriptors.
    void ensure_rings(std::size_t capacity);

    /// Reads the emulator window, augments entry snapshots from the API
    /// mapper, and translates to original-program space.
    profile::RuntimeProfile collect_profile();

    sim::Emulator& emulator_;
    ir::Program original_;
    cost::CostModel model_;
    ControllerConfig config_;
    ApiMapper api_;
    profile::RuntimeProfile last_profile_;
    bool have_profile_ = false;
    /// Dynamic pump batch size carried across windows (0 = not yet seeded).
    std::size_t dyn_batch_ = 0;
    /// The pump's ring front end, rebuilt lazily by ensure_rings().
    std::optional<sim::RssDispatcher> rings_;
    std::size_t rings_capacity_ = 0;
    int rings_workers_ = 0;
    bool rings_deterministic_ = false;
    /// Reused poll output (results vector keeps its capacity).
    sim::BatchResult pump_out_;
    /// ctl.* counters registered in the emulator's metrics registry.
    telemetry::MetricId ctl_ticks_ = 0;
    telemetry::MetricId ctl_deploys_ = 0;
    telemetry::MetricId ctl_rejects_ = 0;
};

}  // namespace pipeleon::runtime
