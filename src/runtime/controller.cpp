#include "runtime/controller.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace pipeleon::runtime {

Controller::Controller(sim::Emulator& emulator, ir::Program original,
                       cost::CostModel model, ControllerConfig config)
    : emulator_(emulator),
      original_(std::move(original)),
      model_(std::move(model)),
      config_(std::move(config)),
      api_(original_) {
    original_.validate();
    ctl_ticks_ = emulator_.metrics().counter("ctl.ticks");
    ctl_deploys_ = emulator_.metrics().counter("ctl.deploys");
    ctl_rejects_ = emulator_.metrics().counter("ctl.verify_rejects");
}

profile::RuntimeProfile Controller::collect_profile() {
    TELEMETRY_SPAN("controller.profile");
    profile::RawCounters raw = emulator_.read_counters();
    // The emulator only knows deployed tables; the API mapper supplies the
    // authoritative original-space entry snapshots (including merged-away
    // tables) and control-plane update counts.
    for (auto& [name, snap] : api_.snapshots()) {
        raw.entries[name] = snap;
    }
    profile::CounterMap map =
        profile::CounterMap::build(original_, emulator_.program());
    return map.translate(original_, raw);
}

void Controller::ensure_rings(std::size_t capacity) {
    const int workers = emulator_.worker_count();
    const bool det = emulator_.deterministic();
    if (rings_.has_value() && rings_capacity_ == capacity &&
        rings_workers_ == workers && rings_deterministic_ == det) {
        return;
    }
    sim::RingConfig cfg;
    cfg.rx_capacity = capacity;
    rings_.emplace(emulator_.make_rings(cfg));
    rings_capacity_ = capacity;
    rings_workers_ = workers;
    rings_deterministic_ = det;
}

Controller::PumpStats Controller::pump_window_impl(trafficgen::Workload& workload,
                                                   int packets,
                                                   double window_seconds,
                                                   std::size_t batch_size,
                                                   bool adaptive) {
    PumpStats stats;
    if (packets <= 0) {
        // Nothing to pump: still advance the window clock so callers that
        // alternate empty and busy windows keep a monotonic timeline.
        emulator_.advance_time(window_seconds);
        return stats;
    }
    const std::size_t floor = std::max<std::size_t>(1, config_.batch_floor);
    const std::size_t cap = std::max(floor, config_.batch_cap);
    if (batch_size == 0) batch_size = 1;
    if (adaptive) batch_size = std::min(cap, std::max(floor, batch_size));

    // The ring front end: bursts dispatch through RSS into per-worker RX
    // rings and a poll services them (poll == batch boundary == control
    // drain point). Auto capacity covers the largest burst twice over, so
    // the closed-loop pump only overflow-drops when the user configured a
    // smaller ring on purpose.
    const std::size_t capacity =
        config_.ring_capacity != 0 ? config_.ring_capacity
                                   : 2 * std::max(cap, batch_size);

    auto remaining = static_cast<std::uint64_t>(packets);
    const double seconds_per_packet =
        window_seconds / static_cast<double>(packets);
    double total_cycles = 0.0;
    std::uint64_t completed = 0;
    while (remaining > 0) {
        // Worker count / determinism may change mid-window via drained
        // control ops; the rings are empty between polls, so rebuilding
        // here never strands descriptors.
        ensure_rings(capacity);
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, batch_size));
        sim::PacketBatch batch = workload.next_batch(emulator_.fields(), n);
        if (batch.empty()) break;  // workload ran dry (phase ended early)
        const std::size_t accepted =
            rings_->dispatch_batch(batch, emulator_.now_seconds());
        emulator_.poll(*rings_, pump_out_);
        total_cycles += pump_out_.total_cycles;
        stats.dropped += pump_out_.dropped;
        stats.packets += batch.size();
        stats.offered += batch.size();
        stats.ring_drops += batch.size() - accepted;
        completed += pump_out_.results.size();
        // Advance by packets actually generated, not requested: a workload
        // phase ending early must not skew the window timestamps.
        emulator_.advance_time(seconds_per_packet *
                               static_cast<double>(batch.size()));
        remaining -= std::min<std::uint64_t>(remaining, batch.size());

        ++stats.batches;
        stats.last_batch = batch.size();
        if (stats.min_batch == 0 || batch.size() < stats.min_batch) {
            stats.min_batch = batch.size();
        }
        stats.max_batch = std::max(stats.max_batch, batch.size());

        // The overload signal is the ring counters — descriptors the RX
        // rings actually refused — not the policy verdicts of processed
        // packets (a deny-all ACL drops everything by policy while the
        // rings idle along).
        const double burst_overflow =
            static_cast<double>(batch.size() - accepted) /
            static_cast<double>(batch.size());
        stats.max_batch_drop = std::max(stats.max_batch_drop, burst_overflow);

        if (adaptive) {
            // Two feedback signals, overflow first: a burst the rings shed
            // shrinks regardless of its cycle cost (overload is best shed
            // in small units), then the cycle-budget controller halves
            // above budget and doubles below half of it — multiplicative
            // moves so the size converges in a few batches.
            if (burst_overflow > config_.max_batch_drop_rate) {
                batch_size = std::max(floor, batch_size / 2);
                ++stats.batch_shrinks_drops;
            } else if (pump_out_.total_cycles > config_.target_batch_cycles) {
                batch_size = std::max(floor, batch_size / 2);
                ++stats.batch_shrinks_cycles;
            } else if (pump_out_.total_cycles <
                       config_.target_batch_cycles / 2.0) {
                batch_size = std::min(cap, batch_size * 2);
                ++stats.batch_grows;
            }
        }
    }
    if (adaptive) dyn_batch_ = batch_size;
    if (completed > 0) {
        stats.mean_cycles = total_cycles / static_cast<double>(completed);
        stats.drop_rate = static_cast<double>(stats.dropped) /
                          static_cast<double>(completed);
    }
    stats.throughput_gbps = emulator_.throughput_gbps(stats.mean_cycles);
    return stats;
}

Controller::PumpStats Controller::pump_window(trafficgen::Workload& workload,
                                              int packets, double window_seconds,
                                              std::size_t batch_size) {
    return pump_window_impl(workload, packets, window_seconds, batch_size,
                            /*adaptive=*/false);
}

Controller::PumpStats Controller::pump_window(trafficgen::Workload& workload,
                                              int packets,
                                              double window_seconds) {
    const std::size_t seed = dyn_batch_ != 0 ? dyn_batch_ : 256;
    return pump_window_impl(workload, packets, window_seconds, seed,
                            /*adaptive=*/true);
}

Controller::PreparedDeploy Controller::prepare_deploy(ir::Program target) const {
    TELEMETRY_SPAN("controller.prepare");
    PreparedDeploy prepared;
    prepared.entries = api_.remapped_entries(target);
    prepared.program = std::move(target);
    prepared.incremental = config_.incremental_deployment;
    return prepared;
}

analysis::DiagnosticList Controller::verify_deploy(
    const search::OptimizationOutcome* outcome,
    const PreparedDeploy& prepared) const {
    TELEMETRY_SPAN("controller.verify");
    analysis::Verifier verifier(config_.verify);
    analysis::DiagnosticList diags;
    if (outcome != nullptr) {
        // Translation validation: the optimized program must preserve the
        // original's semantics under the plans that produced it.
        std::vector<analysis::Pipelet> pipelets =
            analysis::form_pipelets(original_, config_.optimizer.pipelet);
        diags.merge(verifier.check_translation(original_, pipelets,
                                               outcome->plans,
                                               prepared.program));
    } else {
        // Reverts re-deploy the original program: structure only.
        diags.merge(verifier.check_program(prepared.program));
    }
    diags.merge(verifier.check_entry_remap(original_, api_.store(),
                                           prepared.program, prepared.entries));
    return diags;
}

void Controller::commit_deploy(PreparedDeploy prepared, TickResult& result) {
    TELEMETRY_SPAN("controller.commit");
    sim::EpochSwap swap;
    swap.program = std::move(prepared.program);
    swap.entries = std::move(prepared.entries);
    swap.incremental = prepared.incremental;
    sim::Emulator::ReconfigureStats stats =
        emulator_.apply_epoch(std::move(swap));
    result.downtime_s = stats.downtime_s;
    if (prepared.incremental) result.caches_kept_warm = stats.caches_kept_warm;
    result.deployed = true;
    if constexpr (telemetry::kEnabled) {
        emulator_.metrics().add(ctl_deploys_);
    }
}

TickResult Controller::deploy_external(ir::Program target) {
    TELEMETRY_SPAN("controller.deploy_external");
    TickResult result;
    target.validate();
    PreparedDeploy prepared = prepare_deploy(std::move(target));
    if (config_.verify_deploys) {
        analysis::DiagnosticList diags = verify_deploy(nullptr, prepared);
        if (!diags.ok()) {
            result.verify_rejected = true;
            result.verify_diagnostics = std::move(diags);
            if constexpr (telemetry::kEnabled) {
                emulator_.metrics().add(ctl_rejects_);
            }
            util::log_warn(util::format(
                "controller: verifier rejected external deploy (%zu findings)",
                result.verify_diagnostics.size()));
            return result;
        }
    }
    commit_deploy(std::move(prepared), result);
    return result;
}

TickResult Controller::tick() {
    TELEMETRY_SPAN("controller.tick");
    TickResult result;
    if constexpr (telemetry::kEnabled) {
        emulator_.metrics().add(ctl_ticks_);
    }

    profile::RuntimeProfile current = collect_profile();
    result.profiled = true;

    bool should_search = true;
    if (have_profile_ && config_.reoptimize_on_change_only) {
        profile::ProfileDelta delta =
            profile::profile_delta(original_, last_profile_, current);
        result.profile_shift = delta.max_shift();
        should_search = delta.max_shift() >= config_.detector.threshold;
    }

    if (should_search) {
        search::Optimizer optimizer(model_, config_.optimizer);
        search::OptimizationOutcome outcome;
        {
            TELEMETRY_SPAN("controller.search");
            outcome = optimizer.optimize(original_, current);
        }
        result.searched = true;
        if (config_.outcome_hook) config_.outcome_hook(outcome);

        bool worthwhile =
            outcome.baseline_latency > 0.0 &&
            outcome.predicted_gain >=
                config_.min_relative_gain * outcome.baseline_latency;
        bool differs = !(outcome.optimized == emulator_.program());
        // Hysteresis: a new layout must also beat what is *measured* on the
        // currently deployed program, or reconfiguration (which may cost
        // downtime on reflash targets) would flap between near-equal plans.
        if (differs && emulator_.latency_stats().count() > 0) {
            double measured = emulator_.latency_stats().mean();
            worthwhile = worthwhile &&
                         outcome.predicted_latency <
                             measured * (1.0 - config_.min_relative_gain);
        }
        if (worthwhile && differs) {
            // prepare -> verify -> commit: the remapped entry set is
            // computed here, off the data-plane hot path; the verifier gates
            // the commit; a rejected candidate never reaches the emulator.
            PreparedDeploy prepared = prepare_deploy(outcome.optimized);
            if (config_.verify_deploys) {
                analysis::DiagnosticList diags =
                    verify_deploy(&outcome, prepared);
                if (!diags.ok()) {
                    result.verify_rejected = true;
                    result.verify_diagnostics = std::move(diags);
                    util::log_warn(util::format(
                        "controller: verifier rejected candidate layout "
                        "(%zu findings); keeping the deployed program",
                        result.verify_diagnostics.size()));
                }
            }
            if (!result.verify_rejected) {
                util::log_info(util::format(
                    "controller: deploying new layout (predicted %.1f -> %.1f "
                    "cycles, %zu plans)",
                    outcome.baseline_latency, outcome.predicted_latency,
                    outcome.plans.size()));
                commit_deploy(std::move(prepared), result);
            }
        } else if (!worthwhile && differs &&
                   !(original_ == emulator_.program())) {
            // The best found plan is not worth deploying. Keep what is
            // running unless it *measures* worse than the plain original
            // would be — then revert (e.g. a cache whose hit rate collapsed,
            // §3.2.2/§3.2.3 reversal).
            bool deployed_is_harmful =
                emulator_.latency_stats().count() > 0 &&
                emulator_.latency_stats().mean() >
                    outcome.baseline_latency * (1.0 + config_.min_relative_gain);
            if (deployed_is_harmful) {
                util::log_info("controller: reverting to the original layout");
                PreparedDeploy prepared = prepare_deploy(original_);
                prepared.incremental = false;  // reverts re-flash cleanly
                bool revert_ok = true;
                if (config_.verify_deploys) {
                    analysis::DiagnosticList diags =
                        verify_deploy(nullptr, prepared);
                    if (!diags.ok()) {
                        // Should be impossible (the original validated at
                        // construction); fail safe and keep serving.
                        result.verify_rejected = true;
                        result.verify_diagnostics = std::move(diags);
                        revert_ok = false;
                    }
                }
                if (revert_ok) commit_deploy(std::move(prepared), result);
            }
        }
        result.outcome = std::move(outcome);
    }

    if constexpr (telemetry::kEnabled) {
        if (result.verify_rejected) emulator_.metrics().add(ctl_rejects_);
    }
    last_profile_ = std::move(current);
    have_profile_ = true;
    api_.begin_window();
    if (!result.deployed) emulator_.begin_window();
    return result;
}

}  // namespace pipeleon::runtime
