#include "runtime/controller.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace pipeleon::runtime {

Controller::Controller(sim::Emulator& emulator, ir::Program original,
                       cost::CostModel model, ControllerConfig config)
    : emulator_(emulator),
      original_(std::move(original)),
      model_(std::move(model)),
      config_(std::move(config)),
      api_(original_) {
    original_.validate();
}

profile::RuntimeProfile Controller::collect_profile() {
    profile::RawCounters raw = emulator_.read_counters();
    // The emulator only knows deployed tables; the API mapper supplies the
    // authoritative original-space entry snapshots (including merged-away
    // tables) and control-plane update counts.
    for (auto& [name, snap] : api_.snapshots()) {
        raw.entries[name] = snap;
    }
    profile::CounterMap map =
        profile::CounterMap::build(original_, emulator_.program());
    return map.translate(original_, raw);
}

Controller::PumpStats Controller::pump_window(trafficgen::Workload& workload,
                                              int packets, double window_seconds,
                                              std::size_t batch_size) {
    PumpStats stats;
    if (batch_size == 0) batch_size = 1;
    std::uint64_t remaining = packets > 0 ? static_cast<std::uint64_t>(packets) : 0;
    double total_cycles = 0.0;
    while (remaining > 0) {
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, batch_size));
        sim::PacketBatch batch = workload.next_batch(emulator_.fields(), n);
        sim::BatchResult r = emulator_.process_batch(batch);
        total_cycles += r.total_cycles;
        stats.dropped += r.dropped;
        stats.packets += n;
        emulator_.advance_time(window_seconds * static_cast<double>(n) /
                               static_cast<double>(std::max(1, packets)));
        remaining -= n;
    }
    if (stats.packets > 0) {
        stats.mean_cycles = total_cycles / static_cast<double>(stats.packets);
        stats.drop_rate = static_cast<double>(stats.dropped) /
                          static_cast<double>(stats.packets);
    }
    stats.throughput_gbps = emulator_.throughput_gbps(stats.mean_cycles);
    return stats;
}

TickResult Controller::tick() {
    TickResult result;

    profile::RuntimeProfile current = collect_profile();
    result.profiled = true;

    bool should_search = true;
    if (have_profile_ && config_.reoptimize_on_change_only) {
        profile::ProfileDelta delta =
            profile::profile_delta(original_, last_profile_, current);
        result.profile_shift = delta.max_shift();
        should_search = delta.max_shift() >= config_.detector.threshold;
    }

    if (should_search) {
        search::Optimizer optimizer(model_, config_.optimizer);
        search::OptimizationOutcome outcome = optimizer.optimize(original_, current);
        result.searched = true;

        bool worthwhile =
            outcome.baseline_latency > 0.0 &&
            outcome.predicted_gain >=
                config_.min_relative_gain * outcome.baseline_latency;
        bool differs = !(outcome.optimized == emulator_.program());
        // Hysteresis: a new layout must also beat what is *measured* on the
        // currently deployed program, or reconfiguration (which may cost
        // downtime on reflash targets) would flap between near-equal plans.
        if (differs && emulator_.latency_stats().count() > 0) {
            double measured = emulator_.latency_stats().mean();
            worthwhile = worthwhile &&
                         outcome.predicted_latency <
                             measured * (1.0 - config_.min_relative_gain);
        }
        if (worthwhile && differs) {
            util::log_info(util::format(
                "controller: deploying new layout (predicted %.1f -> %.1f "
                "cycles, %zu plans)",
                outcome.baseline_latency, outcome.predicted_latency,
                outcome.plans.size()));
            if (config_.incremental_deployment) {
                sim::Emulator::ReconfigureStats stats =
                    emulator_.reconfigure_incremental(outcome.optimized);
                result.downtime_s = stats.downtime_s;
                result.caches_kept_warm = stats.caches_kept_warm;
            } else {
                result.downtime_s = emulator_.reconfigure(outcome.optimized);
            }
            api_.deploy_entries(emulator_);
            result.deployed = true;
        } else if (!worthwhile && differs &&
                   !(original_ == emulator_.program())) {
            // The best found plan is not worth deploying. Keep what is
            // running unless it *measures* worse than the plain original
            // would be — then revert (e.g. a cache whose hit rate collapsed,
            // §3.2.2/§3.2.3 reversal).
            bool deployed_is_harmful =
                emulator_.latency_stats().count() > 0 &&
                emulator_.latency_stats().mean() >
                    outcome.baseline_latency * (1.0 + config_.min_relative_gain);
            if (deployed_is_harmful) {
                util::log_info("controller: reverting to the original layout");
                result.downtime_s = emulator_.reconfigure(original_);
                api_.deploy_entries(emulator_);
                result.deployed = true;
            }
        }
        result.outcome = std::move(outcome);
    }

    last_profile_ = std::move(current);
    have_profile_ = true;
    api_.begin_window();
    if (!result.deployed) emulator_.begin_window();
    return result;
}

}  // namespace pipeleon::runtime
