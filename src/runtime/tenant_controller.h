// runtime/tenant_controller.h — the multi-tenant control plane (ISSUE 8).
// One MultiController fronts a TenantRegistry: each attached tenant gets a
// private Controller (its own profile→optimize→deploy loop against its own
// emulator), while deploy *requests* flow through one shared FIFO queue
// tagged by tenant — the software analogue of the single PF control channel
// every VF's configuration traffic traverses.
//
// The failure-isolation policy lives here. A tenant whose deploys keep
// failing verification, or who floods the shared queue (a deploy storm),
// is quarantined: its requests stay queued (deferred, never silently
// dropped) and its optimizer tick is skipped for a configurable number of
// rounds, while every other tenant's prepare→verify→commit proceeds
// untouched. tests/test_tenant.cpp pins down that a storming or rejected
// tenant cannot delay or corrupt a well-behaved one.
//
// tick_all() is also the window boundary where the §4/Eq. 5 budget is
// re-split: measured per-tenant load (packets completed since the last
// round) feeds search::split_budget, and each tenant's optimizer runs its
// next round against its slice only.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "cost/model.h"
#include "runtime/controller.h"
#include "search/budget_split.h"
#include "sim/tenant.h"

namespace pipeleon::runtime {

/// When a tenant's control-plane behavior trips isolation.
struct QuarantinePolicy {
    /// Consecutive verify-rejected deploys (queued or tick-originated)
    /// before the tenant is quarantined.
    int reject_threshold = 3;
    /// Deploy requests one tenant may submit between rounds before the
    /// burst counts as a storm (quarantine). Also the drain rate: after a
    /// quarantine expires, the deferred backlog applies at most this many
    /// deploys per round (excess is deferred again, never re-quarantined —
    /// a past storm drains off; only fresh flooding re-trips).
    std::size_t storm_threshold = 8;
    /// Rounds a quarantined tenant sits out before its queue drains again.
    int quarantine_rounds = 2;
};

struct MultiControllerConfig {
    /// Per-tenant Controller template (attach() copies it; the optimizer
    /// limits inside are overwritten by the budget split each round).
    ControllerConfig controller;
    QuarantinePolicy quarantine;
    /// The whole NIC's Eq. 5 budget, split across tenants by measured load.
    search::ResourceLimits total_limits;
    search::BudgetSplitOptions split;
    /// Disable to give every tenant the full budget (single-tenant
    /// compatibility mode).
    bool split_budget = true;
};

class MultiController {
public:
    MultiController(sim::TenantRegistry& registry, cost::CostModel model,
                    MultiControllerConfig config = {});

    /// Binds a Controller to the tenant's emulator. `original` is that
    /// tenant's API-surface program (entry bookkeeping happens in its
    /// space). Tenants may be attached with individual configs; otherwise
    /// the template config applies.
    void attach(sim::TenantId id, ir::Program original);
    void attach(sim::TenantId id, ir::Program original, ControllerConfig config);

    Controller& controller(sim::TenantId id);
    const MultiControllerConfig& config() const { return config_; }
    MultiControllerConfig& config() { return config_; }

    /// Enqueues a tenant-tagged deploy request on the shared control queue.
    /// Requests drain in global FIFO order at the next tick_all(). The
    /// tenant must be attached.
    void enqueue_deploy(sim::TenantId id, ir::Program target);
    std::size_t queued_deploys() const { return queue_.size(); }
    std::size_t queued_deploys(sim::TenantId id) const;

    bool quarantined(sim::TenantId id) const;

    /// One attached tenant's slice of a round.
    struct TenantRound {
        sim::TenantId tenant = sim::kNoTenant;
        bool quarantined = false;
        std::size_t deploys_applied = 0;
        std::size_t deploys_rejected = 0;
        /// Requests left on the queue because the tenant is (or became)
        /// quarantined this round.
        std::size_t deploys_deferred = 0;
        /// The optimizer round (valid when `ticked`; quarantined tenants
        /// skip it).
        bool ticked = false;
        TickResult tick;
        /// The Eq. 5 slice this tenant's next round will search under.
        search::ResourceLimits granted;
        double measured_load = 0.0;
    };
    struct RoundResult {
        std::vector<TenantRound> tenants;
        const TenantRound* for_tenant(sim::TenantId id) const;
    };

    /// One control round over every attached tenant: (1) re-split the
    /// budget from each tenant's completed packets since the last round,
    /// (2) drain the shared deploy queue in FIFO order through each
    /// tenant's prepare→verify→commit (quarantined tenants' requests stay
    /// queued), (3) run each non-quarantined tenant's optimizer tick.
    RoundResult tick_all();

private:
    struct TenantRt {
        sim::TenantId id = sim::kNoTenant;
        std::unique_ptr<Controller> controller;
        int consecutive_rejects = 0;
        int quarantine_left = 0;
        /// Requests submitted since the previous round (the storm signal).
        std::size_t enqueued_this_round = 0;
        std::uint64_t last_completed = 0;
    };
    struct DeployRequest {
        sim::TenantId tenant = sim::kNoTenant;
        ir::Program target;
    };

    TenantRt* runtime_for(sim::TenantId id);
    const TenantRt* runtime_for(sim::TenantId id) const;
    void note_reject(TenantRt& rt);

    sim::TenantRegistry& registry_;
    cost::CostModel model_;
    MultiControllerConfig config_;
    std::vector<TenantRt> tenants_;
    std::deque<DeployRequest> queue_;
};

}  // namespace pipeleon::runtime
