#!/usr/bin/env python3
"""Compare two directories of pipeleon bench reports and flag regressions.

Each directory holds BENCH_<name>.json files in the pipeleon.bench_report/1
schema. For every report present in BOTH directories, the gated metrics are
diffed with a relative tolerance:

  throughput_gbps  higher is better: regression when
                   current < baseline * (1 - tolerance)
  latency_p99      lower is better: regression when
                   current > baseline * (1 + tolerance)

Benches listed in PER_BENCH_METRICS gate additional metrics of their own
(e.g. ext_hierarchical_memory gates tiered_goodput_mpps higher-is-better
and tiered_eff_cycles lower-is-better) on top of the common set.

A brand-new bench (present only in the current run) prints
"new <name>: no baseline, not gated" and passes. A bench present in the
baseline but MISSING from the current run is a coverage regression — a
bench that silently stopped running would otherwise retire its own gate —
and fails with exit 1 unless the name is listed via --allow-missing
(the allowlist for intentionally retired benches). A missing or empty
baseline directory (fresh branch, no artifact yet) passes trivially.
Metrics missing or zero on either side are skipped (a zero baseline means
the bench didn't exercise that path — there is nothing meaningful to gate
against). Exit status: 0 = no regression, 1 = at least one regression
(metric or coverage), 2 = usage/IO error.

Usage:
  tools/bench_compare.py BASELINE_DIR CURRENT_DIR [--tolerance 0.15]
                         [--metrics throughput_gbps,latency_p99]
                         [--allow-missing old_bench,other_bench]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "pipeleon.bench_report/1"

# metric name -> direction ("higher" / "lower" is better)
DEFAULT_METRICS = {
    "throughput_gbps": "higher",
    "latency_p99": "lower",
}

# Extra gated metrics for specific benches, merged on top of the common set
# (and on top of --metrics when given). Keeps bench-specific KPIs gated
# without forcing every other report to carry them.
PER_BENCH_METRICS: dict[str, dict[str, str]] = {
    "ext_hierarchical_memory": {
        "tiered_goodput_mpps": "higher",
        "tiered_eff_cycles": "lower",
    },
    "micro_match": {
        "probe_ns_per_key": "lower",
    },
}


def load_reports(directory: Path) -> dict[str, dict]:
    """Maps bench name -> report dict for every BENCH_*.json in directory."""
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with path.open() as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}")
            continue
        if not isinstance(report, dict) or report.get("schema") != SCHEMA:
            schema = report.get("schema") if isinstance(report, dict) else None
            print(f"warning: skipping {path}: schema {schema!r}")
            continue
        if not isinstance(report.get("metrics", {}), dict):
            print(f"warning: skipping {path}: 'metrics' is not an object")
            continue
        name = report.get("bench", path.stem)
        if name in reports:
            print(f"warning: duplicate bench {name!r} ({path} shadows an "
                  f"earlier report); keeping the last one")
        reports[name] = report
    return reports


def compare(baseline: dict[str, dict], current: dict[str, dict],
            metrics: dict[str, str], tolerance: float,
            allow_missing: set[str]) -> int:
    regressions = 0
    common = sorted(set(baseline) & set(current))
    for name in sorted(set(current) - set(baseline)):
        print(f"  new   {name}: no baseline, not gated")
    for name in sorted(set(baseline) - set(current)):
        if name in allow_missing:
            print(f"  gone  {name}: retired (allowlisted), not gated")
        else:
            print(f"  MISSING  {name}: in baseline but absent from the "
                  "current run — coverage regression (allowlist retired "
                  "benches with --allow-missing)")
            regressions += 1

    for name in common:
        base_m = baseline[name].get("metrics", {})
        cur_m = current[name].get("metrics", {})
        gated = dict(metrics)
        gated.update(PER_BENCH_METRICS.get(name, {}))
        for metric, direction in gated.items():
            base = base_m.get(metric)
            cur = cur_m.get(metric)
            if not isinstance(base, (int, float)) or not isinstance(
                    cur, (int, float)) or base <= 0 or cur < 0:
                continue
            delta = (cur - base) / base
            if direction == "higher":
                regressed = cur < base * (1.0 - tolerance)
                arrow = "↓" if delta < 0 else "↑"
            else:
                regressed = cur > base * (1.0 + tolerance)
                arrow = "↑" if delta > 0 else "↓"
            verdict = "REGRESSION" if regressed else "ok"
            print(f"  {verdict:>10}  {name}.{metric}: "
                  f"{base:g} -> {cur:g} ({arrow}{abs(delta) * 100:.1f}%, "
                  f"tolerance {tolerance * 100:.0f}%)")
            regressions += regressed
    return regressions


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", type=Path, help="directory of baseline reports")
    parser.add_argument("current", type=Path, help="directory of current reports")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative change (default 0.15 = 15%%)")
    parser.add_argument("--metrics", default=None,
                        help="comma-separated list; prefix a name with '-' for "
                             "lower-is-better (default: throughput_gbps,"
                             "-latency_p99)")
    parser.add_argument("--allow-missing", default="",
                        help="comma-separated bench names that may be present "
                             "in the baseline but absent from the current run "
                             "(intentionally retired benches)")
    args = parser.parse_args(argv)

    if not args.current.is_dir():
        print(f"error: current directory {args.current} does not exist")
        return 2
    if not args.baseline.is_dir():
        # A missing baseline directory is the normal state of a fresh branch
        # (no artifact published yet) — same trivial pass as an empty one.
        print(f"no baseline directory at {args.baseline}; "
              "gate passes trivially")
        return 0
    if not 0.0 <= args.tolerance < 1.0:
        print(f"error: tolerance {args.tolerance} outside [0, 1)")
        return 2

    metrics = dict(DEFAULT_METRICS)
    if args.metrics is not None:
        metrics = {}
        for raw in args.metrics.split(","):
            raw = raw.strip()
            if not raw:
                continue
            if raw.startswith("-"):
                metrics[raw[1:]] = "lower"
            else:
                metrics[raw] = "higher"

    baseline = load_reports(args.baseline)
    current = load_reports(args.current)
    if not current:
        print(f"error: no {SCHEMA} reports found in {args.current}")
        return 2
    if not baseline:
        # First run on a fresh main: nothing to gate against yet.
        print(f"no baseline reports in {args.baseline}; gate passes trivially")
        return 0

    allow_missing = {s.strip() for s in args.allow_missing.split(",")
                     if s.strip()}
    print(f"comparing {len(current)} report(s) against "
          f"{len(baseline)} baseline report(s):")
    regressions = compare(baseline, current, metrics, args.tolerance,
                          allow_missing)
    if regressions:
        print(f"\n{regressions} regression(s) (metric beyond "
              f"{args.tolerance * 100:.0f}% tolerance, or missing bench)")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
